//! The long-lived attack daemon: a readiness-driven TCP server over the
//! newline-delimited JSON [`protocol`](crate::protocol).
//!
//! ## Architecture
//!
//! One [`Daemon`] owns a single **front thread** plus a small pool of
//! **dispatch workers** ([`DaemonLimits::workers`]):
//!
//! ```text
//!            ┌───────────────────────────────────────────────┐
//!  clients ──▶ front thread: netpoll Poller over nonblocking │
//!            │ listener + every connection; line extraction, │
//!            │ response writing, hardening, fast commands    │
//!            │ (stats / metrics / shutdown) served inline    │
//!            └──────┬───────────────────────────▲────────────┘
//!      attack jobs  │   ┌───────────────┐       │ completions
//!      (coalesced)  ├──▶│ batcher:      │       │ (responses,
//!      corpus jobs  │   │ group by      │       │  demuxed per
//!                   │   │ corpus Arc ×  │       │  request)
//!                   │   │ thread count, │       │
//!                   │   │ flush after   │       │
//!                   │   │ batch_window  │       │
//!                   │   └──────┬────────┘       │
//!                   ▼          ▼                │
//!            ┌───────────────────────────────────────────────┐
//!            │ worker pool: load_snapshot / add_auxiliary /  │
//!            │ attack batches via Engine::run_prepared_batch │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! The front thread multiplexes any number of idle connections over one
//! [`Poller`] (epoll on Linux, `poll(2)` elsewhere on unix, a timed
//! tick fallback otherwise) — no thread per connection. Cheap commands
//! (`stats`, `metrics`, `shutdown`, protocol errors) are answered
//! inline on the front thread, so a scrape never queues behind a
//! multi-second attack. Expensive commands become jobs for the worker
//! pool; their responses come back through a completion queue and are
//! written by the front thread in per-connection request order.
//!
//! ## Server-side attack batching
//!
//! `attack` requests that arrive within one coalescing window
//! ([`DaemonLimits::batch_window`]) against the **same corpus
//! generation** (grouped by `Arc` identity, so a `load_snapshot`
//! landing mid-window closes the old group) and the same effective
//! thread count are merged into a single
//! [`Engine::run_prepared_batch`](dehealth_engine::Engine::run_prepared_batch)
//! pass: one attribute-index build, one worker-pool schedule, one fused
//! sweep over all requests' users — then demuxed back into per-request
//! replies that are **bit-identical** to running each request alone
//! (the engine keeps every request's numeric state separate; see
//! `tests/service_parity.rs`). On a machine where N concurrent attacks
//! would otherwise time-slice N engine pools, coalescing turns them
//! into one saturated pass. A `batch_window` of zero disables
//! coalescing: every request runs the classic solo
//! [`run_prepared`](dehealth_engine::Engine::run_prepared) path.
//!
//! Corpus state is shared copy-on-write, exactly as before the
//! readiness rewrite:
//!
//! - `attack` requests capture the corpus `Arc` when they are accepted
//!   off the wire and run against that **immutable** snapshot;
//! - `load_snapshot` / `add_auxiliary_users` build the replacement
//!   corpus *outside* the lock and swap the slot afterwards — in-flight
//!   attacks keep the version they started with, and the old version is
//!   freed when the last of them drops its `Arc`.
//!
//! Shutdown is cooperative: the `shutdown` command (or
//! [`Daemon::request_shutdown`]) raises a flag; the front thread stops
//! accepting, drains in-flight jobs and outgoing responses, reaps the
//! workers, and exits. [`Daemon::join`] then reaps the front thread.
//!
//! ## Telemetry
//!
//! Every daemon owns a [`Registry`] ([`Daemon::registry`]): per-command
//! request counters and end-to-end latency histograms (spanning queue
//! wait, coalescing window and execution), error counters by kind,
//! connection gauges, corpus residency and generation gauges, and —
//! after every attack — the engine's per-stage timings
//! ([`EngineReport::record_into`](dehealth_engine::EngineReport::record_into)).
//! The batching layer adds three families: `daemon_batch_size` (a
//! unitless histogram of requests per flushed batch),
//! `daemon_batch_window_seconds` (how long each batch coalesced before
//! flushing) and `daemon_queue_depth` (jobs waiting for a worker).
//! The whole registry is served by the `metrics` wire command (JSON,
//! [`registry_to_json`]) and by the optional Prometheus scrape endpoint
//! ([`MetricsServer`](crate::metrics::MetricsServer)). [`DaemonStats`]
//! and the `stats` command read the same lock-free counters. Requests
//! slower than [`DaemonLimits::slow_request_threshold`] additionally
//! emit a structured `warn!` log line with the command, corpus
//! generation, user counts, and the per-stage breakdown.
//!
//! ## Hardening against untrusted peers
//!
//! Three [`DaemonLimits`] protect the daemon from misbehaving clients,
//! each answered with a **typed protocol error** (an `"ok": false`
//! response line) instead of a hang or a silent drop:
//!
//! - a per-request byte-size cap (a request line exceeding it is
//!   rejected and the connection closed before the daemon buffers
//!   unbounded data),
//! - a read deadline on half-open connections (a peer that starts a
//!   request and stalls mid-line is timed out and closed), and
//! - a max-connections cap (connections beyond it receive an error line
//!   and are closed immediately, so established sessions keep their
//!   slots).
//!
//! Backpressure is per connection: while a connection has a request in
//! flight the front thread stops reading its socket, so a pipelining
//! client is bounded by the kernel's TCP buffers, exactly like the
//! thread-per-connection design it replaces.
//!
//! `tests/service_parity.rs` pins the wire schema, the counter
//! semantics, all three hardening behaviors, and batched/unbatched/
//! serial bit-parity.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dehealth_core::AttackConfig;
use dehealth_corpus::Forum;
use dehealth_engine::{BatchRequest, Engine, EngineConfig, EngineOutcome};
use dehealth_netpoll::{Event, Interest, Poller};
use dehealth_telemetry::{info, warn, Counter, Gauge, Histogram, Registry, SpanTimer};

use crate::corpus::{LoadMode, PreparedCorpus};
use crate::json::Json;
use crate::metrics::registry_to_json;
use crate::protocol::{error_response, forum_from_json, ok_response, report_to_json};

/// Ceiling on one poll wait: how often the front thread and the workers
/// re-check the shutdown flag, read deadlines and completions even when
/// no socket turns ready.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// The front thread's token for the listening socket; connections get
/// tokens counting up from 1 (never reused, so a late event for a
/// closed connection cannot alias a new one).
const LISTENER_TOKEN: usize = 0;

/// Every `cmd` label of the per-command metric families
/// (`daemon_command_requests_total`, `daemon_command_seconds`), all
/// pre-registered at bind time so the first scrape already shows the
/// full label space. `"invalid"` covers unparseable requests and
/// requests without a `cmd`; `"unknown"` covers unrecognized commands.
pub const COMMANDS: [&str; 8] = [
    "add_auxiliary_users",
    "attack",
    "invalid",
    "load_snapshot",
    "metrics",
    "shutdown",
    "stats",
    "unknown",
];

/// Every `kind` label of `daemon_error_kind_total`, pre-registered at
/// bind time. The first six classify error *responses*; the last three
/// classify rejected or dropped *connections* (which also answer with an
/// error line but are not counted as served requests).
pub const ERROR_KINDS: [&str; 9] = [
    "connection_cap",
    "invalid_argument",
    "invalid_json",
    "missing_cmd",
    "no_corpus",
    "oversize_request",
    "read_deadline",
    "snapshot_load",
    "unknown_cmd",
];

/// Protocol-hardening and dispatch knobs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonLimits {
    /// Maximum bytes one request line may occupy (including pipelined
    /// but not-yet-dispatched bytes buffered for the connection).
    pub max_request_bytes: usize,
    /// How long a connection may sit on an incomplete request line
    /// before it is timed out as half-open.
    pub read_deadline: Duration,
    /// Maximum concurrently served connections; further connections are
    /// rejected with an error line.
    pub max_connections: usize,
    /// Requests taking longer than this emit a structured slow-request
    /// log line (`warn!` level) with a per-stage breakdown.
    pub slow_request_threshold: Duration,
    /// How long an `attack` request may wait for more attack requests
    /// against the same corpus generation to coalesce into one fused
    /// engine pass. Zero disables batching: every attack runs the solo
    /// `run_prepared` path immediately.
    pub batch_window: Duration,
    /// Dispatch worker threads executing attack batches and corpus
    /// updates (clamped to at least 1). Two by default: one long attack
    /// batch cannot starve a corpus update or a second batch.
    pub workers: usize,
}

impl Default for DaemonLimits {
    fn default() -> Self {
        Self {
            max_request_bytes: 64 * 1024 * 1024,
            read_deadline: Duration::from_secs(30),
            max_connections: 64,
            slow_request_threshold: Duration::from_secs(30),
            batch_window: Duration::from_millis(10),
            workers: 2,
        }
    }
}

/// Request/served-work counters exposed by the `stats` command.
///
/// Since the telemetry layer landed this is a *view*: the daemon keeps
/// these counts in lock-free registry counters and materializes a
/// `DaemonStats` on demand ([`Daemon::stats`], the `stats` command), so
/// the struct and the wire response are unchanged from the mutex era
/// while the storage can no longer be poisoned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Total requests handled (including failed ones).
    pub requests: u64,
    /// Requests that returned an error response.
    pub errors: u64,
    /// `attack` requests served.
    pub attacks: u64,
    /// Anonymized users processed across all attacks.
    pub attacked_users: u64,
    /// Users mapped to some auxiliary identity (not `⊥`).
    pub mapped_users: u64,
    /// `load_snapshot` + `add_auxiliary_users` requests served.
    pub corpus_updates: u64,
    /// Connections rejected by the max-connections cap.
    pub rejected_connections: u64,
    /// Connections dropped for violating a request limit (oversize
    /// request line or half-open read deadline).
    pub dropped_connections: u64,
}

/// The daemon's registry plus cached handles for every hot-path counter.
///
/// Handle lookups by label (`command_requests`, `error_kind`) go through
/// the registry's read lock — cheap, and poison-immune by construction.
struct DaemonMetrics {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    attacks: Arc<Counter>,
    attacked_users: Arc<Counter>,
    mapped_users: Arc<Counter>,
    corpus_updates: Arc<Counter>,
    rejected_connections: Arc<Counter>,
    dropped_connections: Arc<Counter>,
    connections_live: Arc<Gauge>,
    corpus_users: Arc<Gauge>,
    corpus_posts: Arc<Gauge>,
    corpus_generation: Arc<Gauge>,
    corpus_resident_arena_bytes: Arc<Gauge>,
    corpus_borrowed_arena_bytes: Arc<Gauge>,
    /// Requests per flushed attack batch — a **unitless** histogram
    /// (the bucket bounds read as counts, not seconds).
    batch_size: Arc<Histogram>,
    /// How long each flushed batch coalesced (first enqueue → flush).
    batch_window_seconds: Arc<Histogram>,
    /// Jobs waiting for a dispatch worker.
    queue_depth: Arc<Gauge>,
}

impl DaemonMetrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        for cmd in COMMANDS {
            let _ = registry.counter_with("daemon_command_requests_total", &[("cmd", cmd)]);
            let _ = registry.histogram_with("daemon_command_seconds", &[("cmd", cmd)]);
        }
        for kind in ERROR_KINDS {
            let _ = registry.counter_with("daemon_error_kind_total", &[("kind", kind)]);
        }
        Self {
            requests: registry.counter("daemon_requests_total"),
            errors: registry.counter("daemon_errors_total"),
            attacks: registry.counter("daemon_attacks_total"),
            attacked_users: registry.counter("daemon_attacked_users_total"),
            mapped_users: registry.counter("daemon_mapped_users_total"),
            corpus_updates: registry.counter("daemon_corpus_updates_total"),
            rejected_connections: registry.counter("daemon_rejected_connections_total"),
            dropped_connections: registry.counter("daemon_dropped_connections_total"),
            connections_live: registry.gauge("daemon_connections_live"),
            corpus_users: registry.gauge("corpus_users"),
            corpus_posts: registry.gauge("corpus_posts"),
            corpus_generation: registry.gauge("corpus_generation"),
            corpus_resident_arena_bytes: registry.gauge("corpus_resident_arena_bytes"),
            corpus_borrowed_arena_bytes: registry.gauge("corpus_borrowed_arena_bytes"),
            batch_size: registry.histogram("daemon_batch_size"),
            batch_window_seconds: registry.histogram("daemon_batch_window_seconds"),
            queue_depth: registry.gauge("daemon_queue_depth"),
            registry,
        }
    }

    fn command_requests(&self, cmd: &str) -> Arc<Counter> {
        self.registry.counter_with("daemon_command_requests_total", &[("cmd", cmd)])
    }

    fn command_seconds(&self, cmd: &str) -> Arc<Histogram> {
        self.registry.histogram_with("daemon_command_seconds", &[("cmd", cmd)])
    }

    fn error_kind(&self, kind: &'static str) -> Arc<Counter> {
        self.registry.counter_with("daemon_error_kind_total", &[("kind", kind)])
    }

    /// Refresh the corpus gauges after a swap (or the initial load) and
    /// bump the generation.
    fn observe_corpus(&self, corpus: &PreparedCorpus) {
        let memory = corpus.memory_stats();
        self.corpus_users.set(corpus.n_users() as i64);
        self.corpus_posts.set(corpus.n_posts() as i64);
        self.corpus_resident_arena_bytes.set(memory.resident_arena_bytes as i64);
        self.corpus_borrowed_arena_bytes.set(memory.borrowed_arena_bytes as i64);
        self.corpus_generation.inc();
    }

    /// Materialize the classic [`DaemonStats`] view from the counters.
    fn stats(&self) -> DaemonStats {
        DaemonStats {
            requests: self.requests.get(),
            errors: self.errors.get(),
            attacks: self.attacks.get(),
            attacked_users: self.attacked_users.get(),
            mapped_users: self.mapped_users.get(),
            corpus_updates: self.corpus_updates.get(),
            rejected_connections: self.rejected_connections.get(),
            dropped_connections: self.dropped_connections.get(),
        }
    }
}

/// One queued `attack` request: where to send the reply, when it came
/// off the wire (the latency histogram's start), and the raw request.
struct AttackItem {
    conn: usize,
    received: Instant,
    request: Json,
}

/// Work for the dispatch pool.
enum Job {
    /// A flushed batch: every item captured the same corpus `Arc` and
    /// the same effective thread count.
    Attack { corpus: Arc<PreparedCorpus>, threads: usize, items: Vec<AttackItem> },
    /// A corpus update (`load_snapshot` / `add_auxiliary_users`).
    Update { conn: usize, received: Instant, request: Json, label: &'static str },
}

/// A finished job item, headed back to the front thread. `None` means
/// the handler panicked: close the connection without a response, like
/// a died per-connection thread in the old design.
struct Completion {
    conn: usize,
    response: Option<Json>,
}

struct DaemonState {
    config: EngineConfig,
    limits: DaemonLimits,
    corpus: RwLock<Option<Arc<PreparedCorpus>>>,
    /// Serializes corpus *updates* (`load_snapshot`, `add_auxiliary_users`)
    /// end to end. The copy-on-write rebuild happens outside the `corpus`
    /// lock so attacks never block on it — but without this mutex two
    /// concurrent updates would both clone the same base and the second
    /// swap would silently discard the first one's ingest.
    update: Mutex<()>,
    /// Jobs for the dispatch pool, drained FIFO.
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    /// Finished responses headed back to the front thread.
    completions: Mutex<Vec<Completion>>,
    metrics: DaemonMetrics,
    started: Instant,
    shutting_down: AtomicBool,
}

impl DaemonState {
    /// Clone the current corpus `Arc` (poison-immune: the slot only ever
    /// holds a fully built corpus, swapped in as the last step of an
    /// update, so the value is coherent even after a panicked writer).
    fn corpus(&self) -> Option<Arc<PreparedCorpus>> {
        self.corpus.read().unwrap_or_else(PoisonError::into_inner).clone()
    }

    fn swap_corpus(&self, next: PreparedCorpus) {
        let next = Arc::new(next);
        *self.corpus.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&next));
        // Gauges refreshed strictly *after* the swap: a scrape racing an
        // update must never describe a corpus newer than the one attacks
        // can actually observe in the slot.
        self.metrics.observe_corpus(&next);
    }

    fn push_completion(&self, conn: usize, response: Option<Json>) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion { conn, response });
    }

    fn enqueue_job(&self, job: Job) {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        jobs.push_back(job);
        self.metrics.queue_depth.set(jobs.len() as i64);
        drop(jobs);
        self.jobs_cv.notify_one();
    }
}

/// A running attack service (see the [module docs](self)).
///
/// Dropping the handle does **not** stop the daemon; call
/// [`Daemon::request_shutdown`] (or send the `shutdown` command) and then
/// [`Daemon::join`].
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<DaemonState>,
    front_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl Daemon {
    /// Bind `addr` (e.g. `"127.0.0.1:7699"`, or port 0 for an ephemeral
    /// port — see [`Daemon::addr`]) and start serving with no corpus
    /// loaded; clients must `load_snapshot` or `add_auxiliary_users`
    /// before attacking. `config` supplies the default attack parameters
    /// and worker-pool shape; requests may override `top_k`,
    /// `n_landmarks`, `threads` and `seed` per call.
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: EngineConfig) -> std::io::Result<Self> {
        Self::bind_with_corpus(addr, config, None)
    }

    /// [`Daemon::bind`] with a corpus pre-loaded (the `repro serve` path:
    /// load the snapshot before accepting traffic).
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind_with_corpus<A: ToSocketAddrs>(
        addr: A,
        config: EngineConfig,
        corpus: Option<PreparedCorpus>,
    ) -> std::io::Result<Self> {
        Self::bind_with(addr, config, corpus, DaemonLimits::default())
    }

    /// [`Daemon::bind_with_corpus`] with explicit [`DaemonLimits`]
    /// (protocol hardening, coalescing window, worker count).
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        config: EngineConfig,
        corpus: Option<PreparedCorpus>,
        limits: DaemonLimits,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = DaemonMetrics::new();
        if let Some(corpus) = &corpus {
            metrics.observe_corpus(corpus);
        }
        let state = Arc::new(DaemonState {
            config,
            limits,
            corpus: RwLock::new(corpus.map(Arc::new)),
            update: Mutex::new(()),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            metrics,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
        });
        info!(
            "daemon listening",
            addr = addr,
            corpus_users = state.metrics.corpus_users.get(),
            max_connections = limits.max_connections
        );
        let workers: Vec<JoinHandle<()>> = (0..limits.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        let front_state = Arc::clone(&state);
        let front_thread = std::thread::spawn(move || front_loop(listener, &front_state, workers));
        Ok(Self { addr, state, front_thread: Some(front_thread) })
    }

    /// The bound address (with the actual port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once shutdown has been requested (by a client or locally).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }

    /// Raise the shutdown flag locally (equivalent to a client sending
    /// the `shutdown` command).
    pub fn request_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
    }

    /// A copy of the served-work counters.
    #[must_use]
    pub fn stats(&self) -> DaemonStats {
        self.state.metrics.stats()
    }

    /// The daemon's metric registry — shared with the `metrics` wire
    /// command and any [`MetricsServer`](crate::metrics::MetricsServer)
    /// scrape endpoint; still readable after [`Daemon::join`] consumed
    /// the daemon (grab the `Arc` first).
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.state.metrics.registry)
    }

    /// Block until the daemon has shut down (flag raised, jobs drained,
    /// every connection closed), then reap its threads.
    ///
    /// # Panics
    /// Panics if the front loop itself panicked.
    pub fn join(mut self) {
        if let Some(h) = self.front_thread.take() {
            h.join().expect("daemon front loop panicked");
        }
    }
}

/// One accepted connection as the front thread tracks it.
struct Conn {
    stream: TcpStream,
    token: usize,
    /// Raw bytes read but not yet consumed as request lines.
    inbox: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    outbox: Vec<u8>,
    /// Set while `inbox` holds an incomplete request line — the clock
    /// the half-open read deadline runs on.
    partial_since: Option<Instant>,
    /// A request from this connection is queued or executing; the front
    /// thread neither reads the socket nor dispatches further lines
    /// until the completion arrives (per-connection request order, TCP
    /// backpressure on pipelining clients).
    in_flight: bool,
    /// The peer half-closed (EOF on read).
    peer_closed: bool,
    /// Close as soon as the outbox drains (shutdown, drop, EOF).
    closing: bool,
    /// Currently registered poller interest.
    interest: Interest,
}

/// One open coalescing group: attacks captured against the same corpus
/// `Arc` with the same effective thread count, waiting for the window
/// to elapse.
struct BatchGroup {
    corpus: Arc<PreparedCorpus>,
    threads: usize,
    opened: Instant,
    items: Vec<AttackItem>,
}

/// The front thread: accept, read, extract lines, answer fast commands
/// inline, feed slow ones to the batcher/worker pool, write responses —
/// all multiplexed over one [`Poller`].
fn front_loop(listener: TcpListener, state: &Arc<DaemonState>, workers: Vec<JoinHandle<()>>) {
    let mut poller = Poller::new().unwrap_or_else(|_| Poller::tick());
    if poller.register(&listener, LISTENER_TOKEN, Interest::READ).is_err() {
        // The tick backend's register cannot fail; fall back so the
        // daemon still serves (inefficiently) instead of dying.
        poller = Poller::tick();
        let _ = poller.register(&listener, LISTENER_TOKEN, Interest::READ);
    }
    let mut listener = Some(listener);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut groups: Vec<BatchGroup> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut next_token: usize = LISTENER_TOKEN + 1;
    loop {
        let timeout = wait_timeout(&groups, state.limits.batch_window);
        let _ = poller.wait(&mut events, Some(timeout));

        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                if let Some(l) = &listener {
                    accept_ready(state, l, &mut poller, &mut conns, &mut next_token);
                }
                continue;
            }
            if let Some(conn) = conns.get_mut(&ev.token) {
                if ev.readable && !conn.in_flight && !conn.closing {
                    read_ready(state, &mut groups, conn);
                }
            }
            settle_conn(state, &mut poller, &mut conns, ev.token);
        }

        // Demux finished jobs back onto their connections, preserving
        // per-connection request order (in_flight gated the next line).
        let done: Vec<Completion> =
            std::mem::take(&mut *state.completions.lock().unwrap_or_else(PoisonError::into_inner));
        for c in done {
            if let Some(conn) = conns.get_mut(&c.conn) {
                conn.in_flight = false;
                match c.response {
                    Some(response) => queue_response(conn, &response),
                    None => conn.closing = true,
                }
                pump(state, &mut groups, conn);
            }
            settle_conn(state, &mut poller, &mut conns, c.conn);
        }

        let shutting = state.shutting_down.load(Ordering::SeqCst);
        flush_groups(state, &mut groups, shutting);

        // Half-open read deadline: a peer that started a request and
        // stalled gets a typed error, not an immortal connection slot.
        let deadline = state.limits.read_deadline;
        let expired: Vec<usize> = conns
            .values()
            .filter(|c| {
                !c.in_flight
                    && !c.closing
                    && c.partial_since.is_some_and(|since| since.elapsed() > deadline)
            })
            .map(|c| c.token)
            .collect();
        for token in expired {
            if let Some(conn) = conns.get_mut(&token) {
                drop_conn_with_error(
                    state,
                    conn,
                    "read_deadline",
                    &format!(
                        "read deadline exceeded with a partial request ({:.1}s)",
                        deadline.as_secs_f64()
                    ),
                );
            }
            settle_conn(state, &mut poller, &mut conns, token);
        }

        if shutting {
            if let Some(l) = listener.take() {
                let _ = poller.deregister(&l, LISTENER_TOKEN);
                // Dropping the listener refuses new connections while
                // the drain below completes.
            }
            let idle: Vec<usize> = conns
                .values()
                .filter(|c| !c.in_flight && !c.inbox.contains(&b'\n'))
                .map(|c| c.token)
                .collect();
            for token in idle {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.closing = true;
                }
                settle_conn(state, &mut poller, &mut conns, token);
            }
            if conns.is_empty() && groups.is_empty() {
                break;
            }
        }
    }
    // Workers drain the job queue (orphaned jobs for already-closed
    // connections included) and exit on the shutdown flag.
    for w in workers {
        let _ = w.join();
    }
}

/// Next poll wait: the poll interval, shortened to the nearest batch
/// deadline so a coalescing window never overshoots by a full tick.
fn wait_timeout(groups: &[BatchGroup], window: Duration) -> Duration {
    let mut timeout = POLL_INTERVAL;
    for g in groups {
        timeout = timeout.min(window.saturating_sub(g.opened.elapsed()));
    }
    timeout
}

/// Accept every pending connection (the listener is level-triggered but
/// nonblocking, so drain until `WouldBlock`).
fn accept_ready(
    state: &Arc<DaemonState>,
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Max-connections cap: answer over-cap peers with a typed
                // protocol error and close, instead of either queueing
                // them invisibly or starving established sessions.
                if conns.len() >= state.limits.max_connections {
                    state.metrics.rejected_connections.inc();
                    state.metrics.error_kind("connection_cap").inc();
                    reject_connection(stream, state.limits.max_connections);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if poller.register(&stream, token, Interest::READ).is_err() {
                    continue;
                }
                state.metrics.connections_live.inc();
                conns.insert(
                    token,
                    Conn {
                        stream,
                        token,
                        inbox: Vec::new(),
                        outbox: Vec::new(),
                        partial_since: None,
                        in_flight: false,
                        peer_closed: false,
                        closing: false,
                        interest: Interest::READ,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Send one error line to an over-cap connection and drop it. Bounded by
/// a short write timeout so a peer that never reads cannot stall the
/// front thread.
fn reject_connection(stream: TcpStream, cap: usize) {
    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
    let mut stream = stream;
    let response = error_response(&format!("connection limit reached ({cap})"));
    let _ = stream.write_all(response.emit().as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Drain the socket into the connection's inbox (until `WouldBlock`,
/// EOF, or the inbox exceeds the request-size cap), then serve what
/// arrived.
fn read_ready(state: &Arc<DaemonState>, groups: &mut Vec<BatchGroup>, conn: &mut Conn) {
    let mut chunk = [0u8; 16 * 1024];
    while !conn.peer_closed && conn.inbox.len() <= state.limits.max_request_bytes {
        match conn.stream.read(&mut chunk) {
            Ok(0) => conn.peer_closed = true,
            Ok(n) => conn.inbox.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => conn.peer_closed = true,
        }
    }
    pump(state, groups, conn);
}

/// Serve every complete line the connection has buffered, stopping at
/// the first request that goes in flight (per-connection request order —
/// clients may pipeline; responses keep request order). Then update the
/// half-open bookkeeping on whatever incomplete tail remains.
fn pump(state: &Arc<DaemonState>, groups: &mut Vec<BatchGroup>, conn: &mut Conn) {
    while !conn.in_flight && !conn.closing {
        let Some(pos) = conn.inbox.iter().position(|&b| b == b'\n') else { break };
        let line_bytes: Vec<u8> = conn.inbox.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line_bytes);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        handle_line(state, groups, conn, line);
    }
    if conn.inbox.is_empty() || conn.inbox.contains(&b'\n') {
        conn.partial_since = None;
    } else {
        // A request line larger than the cap can never complete —
        // reject it now instead of buffering without bound.
        if !conn.in_flight && !conn.closing && conn.inbox.len() > state.limits.max_request_bytes {
            drop_conn_with_error(
                state,
                conn,
                "oversize_request",
                &format!("request exceeds {} byte limit", state.limits.max_request_bytes),
            );
            return;
        }
        // The deadline clock pauses while a request is in flight (the
        // tail cannot grow: the front stops reading the socket).
        if !conn.in_flight {
            conn.partial_since.get_or_insert_with(Instant::now);
        }
    }
}

/// Classify one request line and route it: fast commands answered
/// inline, `attack` into the batcher, corpus updates straight to the
/// worker queue.
fn handle_line(
    state: &Arc<DaemonState>,
    groups: &mut Vec<BatchGroup>,
    conn: &mut Conn,
    line: &str,
) {
    let received = Instant::now();
    let parsed = Json::parse(line);
    let (label, shutdown): (&'static str, bool) = match &parsed {
        Err(_) => ("invalid", false),
        Ok(request) => match request.get("cmd").and_then(Json::as_str) {
            None => ("invalid", false),
            Some("load_snapshot") => ("load_snapshot", false),
            Some("add_auxiliary_users") => ("add_auxiliary_users", false),
            Some("attack") => ("attack", false),
            Some("stats") => ("stats", false),
            Some("metrics") => ("metrics", false),
            Some("shutdown") => ("shutdown", true),
            Some(_) => ("unknown", false),
        },
    };
    match label {
        "load_snapshot" | "add_auxiliary_users" => {
            let request = parsed.expect("label implies the request parsed");
            conn.in_flight = true;
            state.enqueue_job(Job::Update { conn: conn.token, received, request, label });
        }
        "attack" => {
            let request = parsed.expect("label implies the request parsed");
            // The corpus Arc is captured here, when the request comes
            // off the wire: a swap landing later affects later
            // requests, not this one — and batches group by this Arc,
            // so a swap mid-window closes the old group.
            match state.corpus() {
                None => {
                    let response = finalize_response(
                        state,
                        "attack",
                        received,
                        Err(CmdError::new(
                            "no_corpus",
                            "no corpus loaded (send load_snapshot or add_auxiliary_users)",
                        )),
                    );
                    queue_response(conn, &response);
                }
                Some(corpus) => {
                    // Batches also key on the effective thread count: a
                    // per-request `threads` override cannot share one
                    // engine pool with differently-sized requests. (An
                    // unparseable override lands in the default group
                    // and is rejected by per-item validation.)
                    let threads = request
                        .get("threads")
                        .and_then(Json::as_usize)
                        .unwrap_or(state.config.n_threads);
                    conn.in_flight = true;
                    push_attack(
                        state,
                        groups,
                        corpus,
                        threads,
                        AttackItem { conn: conn.token, received, request },
                    );
                }
            }
        }
        _ => {
            // Fast commands: answered inline on the front thread, so a
            // stats probe or a scrape never queues behind an attack.
            let result: Result<Vec<(String, Json)>, CmdError> = match &parsed {
                Err(e) => Err(CmdError::new("invalid_json", format!("invalid JSON: {e}"))),
                Ok(request) => match label {
                    "invalid" => Err(CmdError::new("missing_cmd", "missing cmd")),
                    "stats" => cmd_stats(state),
                    "metrics" => {
                        Ok(vec![("metrics".into(), registry_to_json(&state.metrics.registry))])
                    }
                    "shutdown" => Ok(Vec::new()),
                    _unknown => {
                        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or_default();
                        Err(CmdError::new("unknown_cmd", format!("unknown cmd {cmd:?}")))
                    }
                },
            };
            let response = finalize_response(state, label, received, result);
            queue_response(conn, &response);
            if shutdown {
                state.shutting_down.store(true, Ordering::SeqCst);
                conn.closing = true;
            }
        }
    }
}

/// File an attack into the coalescing group for its (corpus, threads)
/// key, opening a new group (and its window clock) if none matches.
fn push_attack(
    state: &Arc<DaemonState>,
    groups: &mut Vec<BatchGroup>,
    corpus: Arc<PreparedCorpus>,
    threads: usize,
    item: AttackItem,
) {
    if let Some(group) =
        groups.iter_mut().find(|g| g.threads == threads && Arc::ptr_eq(&g.corpus, &corpus))
    {
        group.items.push(item);
        return;
    }
    let _ = state; // grouping is pure bookkeeping; metrics fire at flush
    groups.push(BatchGroup { corpus, threads, opened: Instant::now(), items: vec![item] });
}

/// Hand every expired group (all of them when `force` — window zero or
/// shutdown) to the worker pool as one fused batch job.
fn flush_groups(state: &Arc<DaemonState>, groups: &mut Vec<BatchGroup>, force: bool) {
    let window = state.limits.batch_window;
    let mut i = 0;
    while i < groups.len() {
        if force || window.is_zero() || groups[i].opened.elapsed() >= window {
            let group = groups.swap_remove(i);
            state.metrics.batch_size.record_secs(group.items.len() as f64);
            state.metrics.batch_window_seconds.record(group.opened.elapsed());
            state.enqueue_job(Job::Attack {
                corpus: group.corpus,
                threads: group.threads,
                items: group.items,
            });
        } else {
            i += 1;
        }
    }
}

/// Append one response line to the connection's outbox.
fn queue_response(conn: &mut Conn, response: &Json) {
    conn.outbox.extend_from_slice(response.emit().as_bytes());
    conn.outbox.push(b'\n');
}

/// Terminate a misbehaving connection: best-effort error line, counted
/// in the stats, closed once the line drains.
fn drop_conn_with_error(
    state: &Arc<DaemonState>,
    conn: &mut Conn,
    kind: &'static str,
    message: &str,
) {
    state.metrics.dropped_connections.inc();
    state.metrics.error_kind(kind).inc();
    queue_response(conn, &error_response(message));
    conn.closing = true;
}

/// Flush, close and re-arm one connection after any activity: write as
/// much of the outbox as the socket accepts, drop the connection when
/// it is finished (or its socket died), and sync the poller interest to
/// what it is actually waiting for.
fn settle_conn(
    state: &Arc<DaemonState>,
    poller: &mut Poller,
    conns: &mut HashMap<usize, Conn>,
    token: usize,
) {
    let Some(conn) = conns.get_mut(&token) else { return };
    let alive = flush_outbox(conn);
    let drained_eof = conn.peer_closed && !conn.in_flight && !conn.inbox.contains(&b'\n');
    if !alive || ((conn.closing || drained_eof) && conn.outbox.is_empty()) {
        let conn = conns.remove(&token).expect("connection was just looked up");
        let _ = poller.deregister(&conn.stream, token);
        state.metrics.connections_live.dec();
        return;
    }
    // Steady state: read only when this connection may dispatch another
    // line; write only while response bytes are queued.
    let desired = Interest {
        readable: !conn.in_flight && !conn.peer_closed && !conn.closing,
        writable: !conn.outbox.is_empty(),
    };
    if desired != conn.interest && poller.modify(&conn.stream, token, desired).is_ok() {
        conn.interest = desired;
    }
}

/// Write as much of the outbox as the socket accepts right now.
/// Returns `false` when the socket is dead.
fn flush_outbox(conn: &mut Conn) -> bool {
    while !conn.outbox.is_empty() {
        match conn.stream.write(&conn.outbox) {
            Ok(0) => return false,
            Ok(n) => {
                conn.outbox.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// A dispatch worker: pop jobs until shutdown, executing each with a
/// panic fence so one poisoned request cannot take the pool down.
fn worker_loop(state: &Arc<DaemonState>) {
    loop {
        let job = {
            let mut jobs = state.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = jobs.pop_front() {
                    state.metrics.queue_depth.set(jobs.len() as i64);
                    break Some(job);
                }
                if state.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = state
                    .jobs_cv
                    .wait_timeout(jobs, POLL_INTERVAL)
                    .unwrap_or_else(PoisonError::into_inner);
                jobs = guard;
            }
        };
        let Some(job) = job else { return };
        run_job(state, job);
    }
}

/// Execute one job; a panicking handler closes its connection(s)
/// without a response — the moral equivalent of a died
/// thread-per-connection handler — instead of wedging the front loop on
/// a completion that never comes.
fn run_job(state: &Arc<DaemonState>, job: Job) {
    let conns: Vec<usize> = match &job {
        Job::Attack { items, .. } => items.iter().map(|i| i.conn).collect(),
        Job::Update { conn, .. } => vec![*conn],
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job {
        Job::Update { conn, received, request, label } => {
            let result = match label {
                "load_snapshot" => cmd_load_snapshot(state, &request),
                _ => cmd_add_auxiliary_users(state, &request),
            };
            let response = finalize_response(state, label, received, result);
            state.push_completion(conn, Some(response));
        }
        Job::Attack { corpus, threads, items } => run_attack_job(state, &corpus, threads, items),
    }));
    if outcome.is_err() {
        for conn in conns {
            state.push_completion(conn, None);
        }
    }
}

/// Validate, execute and demux one attack batch. Single-item batches
/// (always the case with `batch_window == 0`) take the classic solo
/// `run_prepared` path; larger ones run the fused
/// `run_prepared_batch` — both bit-identical per request.
fn run_attack_job(
    state: &Arc<DaemonState>,
    corpus: &Arc<PreparedCorpus>,
    threads: usize,
    items: Vec<AttackItem>,
) {
    let mut ready: Vec<(AttackItem, AttackConfig, Forum)> = Vec::new();
    for item in items {
        match parse_attack_request(state, &item.request) {
            Ok((attack, forum)) => ready.push((item, attack, forum)),
            Err(e) => {
                let response = finalize_response(state, "attack", item.received, Err(e));
                state.push_completion(item.conn, Some(response));
            }
        }
    }
    if ready.is_empty() {
        return;
    }
    let outcomes: Vec<EngineOutcome> = if ready.len() == 1 {
        let (_, attack, forum) = &ready[0];
        let engine = Engine::new(EngineConfig {
            n_threads: threads,
            attack: attack.clone(),
            ..state.config.clone()
        });
        vec![corpus.attack(&engine, forum)]
    } else {
        let engine = Engine::new(EngineConfig { n_threads: threads, ..state.config.clone() });
        let requests: Vec<BatchRequest<'_>> = ready
            .iter()
            .map(|(_, attack, forum)| BatchRequest { attack: attack.clone(), anonymized: forum })
            .collect();
        corpus.attack_batch(&engine, &requests)
    };
    for ((item, _, forum), outcome) in ready.iter().zip(outcomes) {
        state.metrics.attacks.inc();
        state.metrics.attacked_users.add(forum.n_users as u64);
        state
            .metrics
            .mapped_users
            .add(outcome.mapping.iter().filter(|m| m.is_some()).count() as u64);
        // Per-stage latency histograms across requests — the engine
        // report flows into the daemon's registry.
        outcome.report.record_into(&state.metrics.registry);
        let mapping = outcome.mapping.iter().map(|m| m.map_or(Json::Null, Json::int)).collect();
        let candidates = outcome
            .candidates
            .iter()
            .map(|c| Json::Arr(c.iter().map(|&v| Json::int(v)).collect()))
            .collect();
        let fields = vec![
            ("mapping".into(), Json::Arr(mapping)),
            ("candidates".into(), Json::Arr(candidates)),
            ("report".into(), report_to_json(&outcome.report)),
        ];
        let response = finalize_response(state, "attack", item.received, Ok(fields));
        state.push_completion(item.conn, Some(response));
    }
}

/// Resolve one attack request's forum and per-request overrides against
/// the daemon's default attack config (same field order — and therefore
/// the same first error — as the pre-batching daemon).
fn parse_attack_request(
    state: &Arc<DaemonState>,
    request: &Json,
) -> Result<(AttackConfig, Forum), CmdError> {
    let anonymized = match request
        .get("forum")
        .ok_or_else(|| "missing forum".to_string())
        .and_then(forum_from_json)
    {
        Ok(f) => f,
        Err(e) => return Err(CmdError::new("invalid_argument", e)),
    };
    let mut attack = state.config.attack.clone();
    if let Some(k) = request.get("top_k") {
        match k.as_usize() {
            Some(k) => attack.top_k = k,
            None => return Err(CmdError::new("invalid_argument", "invalid top_k")),
        }
    }
    if let Some(h) = request.get("n_landmarks") {
        match h.as_usize() {
            Some(h) => attack.n_landmarks = h,
            None => return Err(CmdError::new("invalid_argument", "invalid n_landmarks")),
        }
    }
    if let Some(s) = request.get("seed") {
        match s.as_usize() {
            Some(s) => attack.seed = s as u64,
            None => return Err(CmdError::new("invalid_argument", "invalid seed")),
        }
    }
    if let Some(t) = request.get("threads") {
        // The effective count was already folded into the batch key;
        // validation still answers a malformed override.
        if t.as_usize().is_none() {
            return Err(CmdError::new("invalid_argument", "invalid threads"));
        }
    }
    Ok((attack, anonymized))
}

/// A failed command: the error-kind label for
/// `daemon_error_kind_total` plus the wire message.
struct CmdError {
    kind: &'static str,
    message: String,
}

impl CmdError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self { kind, message: message.into() }
    }
}

/// Turn a handler result into the wire response and account for it:
/// latency sample (from wire arrival through queueing and execution),
/// per-command and error-kind counters, the slow-request log line, and
/// the served-request totals. Counted after the handler, before the
/// response is written — a `stats` response reports the requests
/// *before* it, not itself.
fn finalize_response(
    state: &Arc<DaemonState>,
    label: &str,
    received: Instant,
    result: Result<Vec<(String, Json)>, CmdError>,
) -> Json {
    let timer = SpanTimer::starting_at(state.metrics.command_seconds(label), received);
    let response = match result {
        Ok(fields) => ok_response(fields),
        Err(e) => {
            state.metrics.error_kind(e.kind).inc();
            error_response(&e.message)
        }
    };
    state.metrics.command_requests(label).inc();
    let elapsed = timer.stop();
    if elapsed >= state.limits.slow_request_threshold {
        warn!(
            "slow request",
            cmd = label,
            seconds = format!("{:.3}", elapsed.as_secs_f64()),
            corpus_generation = state.metrics.corpus_generation.get(),
            corpus_users = state.metrics.corpus_users.get(),
            request_users =
                response.get("mapping").and_then(Json::as_array).map_or(0, <[Json]>::len),
            stages = stage_breakdown(&response)
        );
    }
    state.metrics.requests.inc();
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        state.metrics.errors.inc();
    }
    response
}

/// Compact `stage=secs` breakdown from a response's embedded report, for
/// the slow-request log line (`"-"` when the response carries none).
fn stage_breakdown(response: &Json) -> String {
    let Some(stages) =
        response.get("report").and_then(|r| r.get("stages")).and_then(Json::as_array)
    else {
        return "-".into();
    };
    let parts: Vec<String> = stages
        .iter()
        .filter_map(|s| {
            let name = s.get("stage").and_then(Json::as_str)?;
            let seconds = s.get("seconds").and_then(Json::as_f64)?;
            Some(format!("{name}={seconds:.3}s"))
        })
        .collect();
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(" ")
    }
}

fn cmd_load_snapshot(
    state: &Arc<DaemonState>,
    request: &Json,
) -> Result<Vec<(String, Json)>, CmdError> {
    let Some(path) = request.get("path").and_then(Json::as_str) else {
        return Err(CmdError::new("invalid_argument", "missing path"));
    };
    // Optional `"mode": "mmap" | "owned"` — default zero-copy.
    let mode = match request.get("mode").and_then(Json::as_str) {
        None | Some("mmap") => LoadMode::Mapped,
        Some("owned") => LoadMode::Owned,
        Some(other) => {
            return Err(CmdError::new(
                "invalid_argument",
                format!("invalid load mode {other:?} (mmap or owned)"),
            ))
        }
    };
    let _updating = state.update.lock().unwrap_or_else(PoisonError::into_inner);
    match PreparedCorpus::load_timed_with(Path::new(path), mode) {
        Ok((corpus, seconds)) => {
            let users = corpus.n_users();
            let posts = corpus.n_posts();
            let memory = corpus.memory_stats();
            let mapped = corpus.is_mapped();
            state.swap_corpus(corpus);
            state.metrics.corpus_updates.inc();
            info!(
                "corpus loaded",
                path = path,
                users = users,
                posts = posts,
                generation = state.metrics.corpus_generation.get()
            );
            Ok(vec![
                ("users".into(), Json::int(users)),
                ("posts".into(), Json::int(posts)),
                ("seconds".into(), Json::Num(seconds)),
                ("mapped".into(), Json::Bool(mapped)),
                ("resident_arena_bytes".into(), Json::int(memory.resident_arena_bytes)),
                ("borrowed_arena_bytes".into(), Json::int(memory.borrowed_arena_bytes)),
            ])
        }
        Err(e) => Err(CmdError::new("snapshot_load", format!("snapshot load failed: {e}"))),
    }
}

fn cmd_add_auxiliary_users(
    state: &Arc<DaemonState>,
    request: &Json,
) -> Result<Vec<(String, Json)>, CmdError> {
    let chunk = match request
        .get("forum")
        .ok_or("missing forum")
        .and_then(|v| forum_from_json(v).map_err(|_| "invalid forum"))
    {
        Ok(f) => f,
        Err(e) => return Err(CmdError::new("invalid_argument", e)),
    };
    // Copy-on-write under the update lock: clone the current corpus (or
    // bootstrap from the chunk alone), extend it outside the `corpus`
    // lock so attacks stay unblocked, then swap the slot. The update
    // lock makes concurrent ingests append sequentially instead of both
    // building on the same base and losing one chunk at the swap.
    let _updating = state.update.lock().unwrap_or_else(PoisonError::into_inner);
    let current = state.corpus();
    let next = match current {
        Some(corpus) => {
            let mut next = (*corpus).clone();
            next.append_users(&chunk);
            next
        }
        None => PreparedCorpus::build(chunk, state.config.attack.classifier),
    };
    let users = next.n_users();
    let posts = next.n_posts();
    state.swap_corpus(next);
    state.metrics.corpus_updates.inc();
    Ok(vec![("users".into(), Json::int(users)), ("posts".into(), Json::int(posts))])
}

fn cmd_stats(state: &Arc<DaemonState>) -> Result<Vec<(String, Json)>, CmdError> {
    let stats = state.metrics.stats();
    let (users, posts) = state.corpus().map_or((0, 0), |c| (c.n_users(), c.n_posts()));
    Ok(vec![
        ("corpus_users".into(), Json::int(users)),
        ("corpus_posts".into(), Json::int(posts)),
        ("requests".into(), Json::Num(stats.requests as f64)),
        ("errors".into(), Json::Num(stats.errors as f64)),
        ("attacks".into(), Json::Num(stats.attacks as f64)),
        ("attacked_users".into(), Json::Num(stats.attacked_users as f64)),
        ("mapped_users".into(), Json::Num(stats.mapped_users as f64)),
        ("corpus_updates".into(), Json::Num(stats.corpus_updates as f64)),
        ("rejected_connections".into(), Json::Num(stats.rejected_connections as f64)),
        ("dropped_connections".into(), Json::Num(stats.dropped_connections as f64)),
        ("uptime_seconds".into(), Json::Num(state.started.elapsed().as_secs_f64())),
    ])
}

/// Default engine configuration for a daemon: the paper-default attack
/// with machine parallelism (`n_threads = 0`).
#[must_use]
pub fn default_config() -> EngineConfig {
    EngineConfig { attack: AttackConfig::default(), ..EngineConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::{Forum, ForumConfig};
    use std::thread;

    /// Pins the `swap_corpus` ordering fix: the slot is swapped *before*
    /// the gauges are refreshed, so a scrape racing an update may see a
    /// stale (smaller) gauge, but never a gauge describing a corpus newer
    /// than the one attacks can observe. With the old order (gauges
    /// first) a strictly-growing sequence of swaps makes the inverted
    /// window directly observable: `gauge_users > slot_users`.
    #[test]
    fn corpus_gauges_never_lead_the_slot_during_swaps() {
        let base = Forum::generate(&ForumConfig::tiny(), 42);
        let chunk = Forum::generate(&ForumConfig::tiny(), 77);
        let mut corpora = Vec::new();
        let mut corpus = PreparedCorpus::build(base, Default::default());
        for _ in 0..16 {
            corpus.append_users(&chunk);
            corpora.push(corpus.clone());
        }

        let state = Arc::new(DaemonState {
            config: default_config(),
            limits: DaemonLimits::default(),
            corpus: RwLock::new(None),
            update: Mutex::new(()),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            metrics: DaemonMetrics::new(),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
        });

        let swapper = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                for corpus in corpora {
                    state.swap_corpus(corpus);
                }
            })
        };
        while !swapper.is_finished() {
            // Sample gauge first, slot second: if the implementation ever
            // publishes gauges before the swap, the gauge can describe a
            // corpus the slot does not hold yet and this inverts.
            let gauge_users = state.metrics.corpus_users.get();
            let slot_users = state.corpus().map_or(0, |c| c.n_users() as i64);
            assert!(
                slot_users >= gauge_users,
                "corpus_users gauge ({gauge_users}) leads the corpus slot ({slot_users})"
            );
        }
        swapper.join().unwrap();
        assert_eq!(state.metrics.corpus_users.get(), state.corpus().unwrap().n_users() as i64);
    }
}
