//! The long-lived attack daemon: a readiness-driven TCP server speaking
//! the newline-delimited JSON [`protocol`](crate::protocol) plus
//! length-prefixed binary [`frame`]s for the bulk
//! commands, auto-detected per message by first byte.
//!
//! ## Architecture
//!
//! One [`Daemon`] owns a single **front thread** plus a small pool of
//! **dispatch workers** ([`DaemonLimits::workers`]). The front thread
//! does **framing only** — it never parses a bulk request or serializes
//! a reply; both are billed to the workers:
//!
//! ```text
//!            ┌───────────────────────────────────────────────┐
//!  clients ──▶ front thread: netpoll Poller over nonblocking │
//!            │ listener + every connection; FRAMING ONLY     │
//!            │ (line / binary-frame extraction, cap + magic  │
//!            │ + checksum checks, batch-key byte scan),      │
//!            │ outbox writes, hardening, fast commands       │
//!            │ (stats / metrics / shutdown) served inline    │
//!            └──────┬───────────────────────────▲────────────┘
//!       parse jobs  │   ┌───────────────┐       │ completions
//!       (raw bytes) ├──▶│ batcher:      │       │ (finished
//!                   │   │ group by      │       │  outbox BYTES,
//!                   │   │ corpus Arc ×  │       │  demuxed per
//!                   │   │ thread count, │       │  request)
//!                   │   │ flush after   │       │
//!                   │   │ batch_window  │       │
//!                   │   └──────┬────────┘       │
//!                   ▼          ▼                │
//!            ┌───────────────────────────────────────────────┐
//!            │ worker pool: parse / validate raw requests,   │
//!            │ load_snapshot / add_auxiliary / attack batches│
//!            │ via Engine::run_prepared_batch, then emit the │
//!            │ reply JSON into finished outbox bytes         │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! The front thread multiplexes any number of idle connections over one
//! [`Poller`] (epoll on Linux, `poll(2)` elsewhere on unix, a timed
//! tick fallback otherwise) — no thread per connection. Cheap commands
//! (`stats`, `metrics`, `shutdown`, protocol errors) are answered
//! inline on the front thread, so a scrape never queues behind a
//! multi-second attack. Bulk commands (`attack`,
//! `add_auxiliary_users`, `load_snapshot`) travel to the worker pool as
//! **raw bytes** (`RawRequest`): a worker parses and validates the
//! request, runs it, serializes the reply, and hands the front thread a
//! finished byte buffer to splice into the connection's outbox — the
//! front thread's per-request work is O(bytes scanned), independent of
//! forum size. Responses come back through a completion queue and are
//! written in per-connection request order.
//!
//! ## Wire encodings
//!
//! Each inbound message picks its encoding by first byte:
//!
//! - any byte other than `0xDE` starts a newline-delimited JSON request
//!   line — the full legacy protocol, every command;
//! - `0xDE` (never a legal first byte of JSON text) starts a binary
//!   frame: magic, command tag, little-endian payload length (so the
//!   total claim is validated against [`DaemonLimits::max_request_bytes`]
//!   from the fixed 8-byte header, **before** any payload is buffered),
//!   payload in the snapshot codec's layout, and an FNV-1a checksum
//!   trailer. Only the bulk payload commands have binary forms
//!   (`attack`, `add_auxiliary_users`); replies are always JSON lines.
//!   See [`frame`] for the exact byte layout.
//!
//! Both encodings of the same request are **bit-identical** on the
//! reply side and coalesce into the same batches
//! (`tests/service_parity.rs` pins both).
//!
//! For batching, the front thread needs one fact from each `attack`
//! request before a worker has parsed it: the effective thread count
//! (part of the group key). A byte scanner
//! ([`frame::scan_top_level`]) extracts it from JSON without building a
//! tree, and [`frame::peek_attack_threads`] reads it from a frame's
//! fixed-offset options block; a request whose scanned key turns out
//! wrong after the full parse is simply re-filed under its actual key.
//!
//! ## Server-side attack batching
//!
//! `attack` requests that arrive within one coalescing window
//! ([`DaemonLimits::batch_window`]) against the **same corpus
//! generation** (grouped by `Arc` identity, so a `load_snapshot`
//! landing mid-window closes the old group), the same effective
//! thread count and the same exactness mode (an `"mode": "approx"`
//! request must never fuse with an exact one) are merged into a single
//! [`Engine::run_prepared_batch`](dehealth_engine::Engine::run_prepared_batch)
//! pass: one attribute-index build, one worker-pool schedule, one fused
//! sweep over all requests' users — then demuxed back into per-request
//! replies that are **bit-identical** to running each request alone
//! (the engine keeps every request's numeric state separate; see
//! `tests/service_parity.rs`). On a machine where N concurrent attacks
//! would otherwise time-slice N engine pools, coalescing turns them
//! into one saturated pass. A `batch_window` of zero disables
//! coalescing: every request runs the classic solo
//! [`run_prepared`](dehealth_engine::Engine::run_prepared) path.
//!
//! Corpus state is shared copy-on-write, exactly as before the
//! readiness rewrite:
//!
//! - `attack` requests capture the corpus `Arc` when they are accepted
//!   off the wire and run against that **immutable** snapshot;
//! - `load_snapshot` / `add_auxiliary_users` build the replacement
//!   corpus *outside* the lock and swap the slot afterwards — in-flight
//!   attacks keep the version they started with, and the old version is
//!   freed when the last of them drops its `Arc`.
//!
//! Shutdown is cooperative: the `shutdown` command (or
//! [`Daemon::request_shutdown`]) raises a flag; the front thread stops
//! accepting, drains in-flight jobs and outgoing responses, reaps the
//! workers, and exits. [`Daemon::join`] then reaps the front thread.
//!
//! ## Telemetry
//!
//! Every daemon owns a [`Registry`] ([`Daemon::registry`]): per-command
//! request counters and end-to-end latency histograms (spanning queue
//! wait, coalescing window and execution), error counters by kind,
//! connection gauges, corpus residency and generation gauges, and —
//! after every attack — the engine's per-stage timings
//! ([`EngineReport::record_into`](dehealth_engine::EngineReport::record_into)).
//! The batching layer adds three families: `daemon_batch_size` (a
//! unitless histogram of requests per flushed batch),
//! `daemon_batch_window_seconds` (how long each batch coalesced before
//! flushing) and `daemon_queue_depth` (jobs waiting for a worker).
//! Four per-request **stage timers** split every bulk request's wall
//! time along the worker pipeline — `daemon_parse_seconds` (raw bytes →
//! validated request, on a worker), `daemon_queue_seconds` (waiting for
//! a worker plus any coalescing window), `daemon_engine_seconds`
//! (execution), `daemon_emit_seconds` (reply → outbox bytes, on a
//! worker) — proving parse and emit are billed to the pool, not the
//! front thread. `daemon_encoding_requests_total{encoding=json|binary}`
//! counts how each served request arrived on the wire, and
//! `daemon_attack_seconds{exactness=exact|approx}` splits attack
//! latency by whether the request rode the approximate fast tier.
//! The whole registry is served by the `metrics` wire command (JSON,
//! [`registry_to_json`]) and by the optional Prometheus scrape endpoint
//! ([`MetricsServer`](crate::metrics::MetricsServer)). [`DaemonStats`]
//! and the `stats` command read the same lock-free counters. Requests
//! slower than [`DaemonLimits::slow_request_threshold`] additionally
//! emit a structured `warn!` log line with the command, corpus
//! generation, user counts, and the per-stage breakdown.
//!
//! ## Hardening against untrusted peers
//!
//! Three [`DaemonLimits`] protect the daemon from misbehaving clients,
//! each answered with a **typed protocol error** (an `"ok": false`
//! response line) instead of a hang or a silent drop:
//!
//! - a per-request byte-size cap (a request line exceeding it is
//!   rejected and the connection closed before the daemon buffers
//!   unbounded data; a binary frame is rejected from its 8-byte header
//!   the moment the declared length exceeds the cap — a header claiming
//!   2 GiB costs the daemon 8 buffered bytes),
//! - a read deadline on half-open connections (a peer that starts a
//!   request and stalls mid-line is timed out and closed), and
//! - a max-connections cap (connections beyond it receive an error line
//!   and are closed immediately, so established sessions keep their
//!   slots).
//!
//! Malformed frames — bad magic, unknown tag, nonzero reserved byte,
//! checksum mismatch (including a JSON line injected inside a frame's
//! declared extent) — get the same treatment: one typed error line
//! counted under its [`ERROR_KINDS`] label, then a closed connection.
//!
//! Backpressure is per connection: while a connection has a request in
//! flight the front thread stops reading its socket, so a pipelining
//! client is bounded by the kernel's TCP buffers, exactly like the
//! thread-per-connection design it replaces.
//!
//! `tests/service_parity.rs` pins the wire schema, the counter
//! semantics, the hardening and malformed-frame behaviors, and
//! batched/unbatched/serial bit-parity across both encodings.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dehealth_core::AttackConfig;
use dehealth_corpus::Forum;
use dehealth_engine::{BatchRequest, Engine, EngineConfig, EngineOutcome, ExactnessMode};
use dehealth_netpoll::{Event, Interest, Poller};
use dehealth_telemetry::{info, warn, Counter, Gauge, Histogram, Registry, SpanTimer};

use crate::corpus::{LoadMode, PreparedCorpus};
use crate::frame::{
    self, FrameError, FrameTag, FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_TRAILER_BYTES,
};
use crate::json::Json;
use crate::metrics::registry_to_json;
use crate::protocol::{error_response, forum_from_json, ok_response, report_to_json};

/// Ceiling on one poll wait: how often the front thread and the workers
/// re-check the shutdown flag, read deadlines and completions even when
/// no socket turns ready.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// The front thread's token for the listening socket; connections get
/// tokens counting up from 1 (never reused, so a late event for a
/// closed connection cannot alias a new one).
const LISTENER_TOKEN: usize = 0;

/// Every `cmd` label of the per-command metric families
/// (`daemon_command_requests_total`, `daemon_command_seconds`), all
/// pre-registered at bind time so the first scrape already shows the
/// full label space. `"invalid"` covers unparseable requests and
/// requests without a `cmd`; `"unknown"` covers unrecognized commands.
pub const COMMANDS: [&str; 8] = [
    "add_auxiliary_users",
    "attack",
    "invalid",
    "load_snapshot",
    "metrics",
    "shutdown",
    "stats",
    "unknown",
];

/// Every `kind` label of `daemon_error_kind_total`, pre-registered at
/// bind time. Most classify error *responses*; `connection_cap`,
/// `read_deadline`, `oversize_request` and the two frame kinds
/// (`bad_frame`, `frame_checksum`) classify rejected or dropped
/// *connections* (which also answer with an error line but are not
/// counted as served requests).
pub const ERROR_KINDS: [&str; 12] = [
    "bad_frame",
    "connection_cap",
    "frame_checksum",
    "invalid_argument",
    "invalid_json",
    "missing_cmd",
    "no_corpus",
    "no_quantized_arenas",
    "oversize_request",
    "read_deadline",
    "snapshot_load",
    "unknown_cmd",
];

/// Every `exactness` label of `daemon_attack_seconds`, pre-registered
/// at bind time: whether each served attack ran the bit-exact pipeline
/// or the approximate fast tier.
pub const EXACTNESS_LABELS: [&str; 2] = ["approx", "exact"];

/// Margin applied when an attack request selects `"mode": "approx"`
/// without an explicit `margin` field.
pub const DEFAULT_APPROX_MARGIN: f64 = 0.1;

/// Every `encoding` label of `daemon_encoding_requests_total`,
/// pre-registered at bind time: how each served request arrived on the
/// wire — a newline-JSON line or a length-prefixed binary frame.
pub const ENCODINGS: [&str; 2] = ["binary", "json"];

/// Protocol-hardening and dispatch knobs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonLimits {
    /// Maximum bytes one request line may occupy (including pipelined
    /// but not-yet-dispatched bytes buffered for the connection).
    pub max_request_bytes: usize,
    /// How long a connection may sit on an incomplete request line
    /// before it is timed out as half-open.
    pub read_deadline: Duration,
    /// Maximum concurrently served connections; further connections are
    /// rejected with an error line.
    pub max_connections: usize,
    /// Requests taking longer than this emit a structured slow-request
    /// log line (`warn!` level) with a per-stage breakdown.
    pub slow_request_threshold: Duration,
    /// How long an `attack` request may wait for more attack requests
    /// against the same corpus generation to coalesce into one fused
    /// engine pass. Zero disables batching: every attack runs the solo
    /// `run_prepared` path immediately.
    pub batch_window: Duration,
    /// Dispatch worker threads executing attack batches and corpus
    /// updates (clamped to at least 1). Two by default: one long attack
    /// batch cannot starve a corpus update or a second batch.
    pub workers: usize,
    /// Whether approximate-mode attacks may quantize the corpus's
    /// refined arenas on the fly when no persisted quantized mirror is
    /// loaded (a v2 snapshot, or a v3 file without the quantized
    /// section). When `false`, such requests are answered with a typed
    /// `no_quantized_arenas` error instead of paying the per-attack
    /// quantization cost silently.
    pub runtime_quantization: bool,
}

impl Default for DaemonLimits {
    fn default() -> Self {
        Self {
            max_request_bytes: 64 * 1024 * 1024,
            read_deadline: Duration::from_secs(30),
            max_connections: 64,
            slow_request_threshold: Duration::from_secs(30),
            batch_window: Duration::from_millis(10),
            workers: 2,
            runtime_quantization: true,
        }
    }
}

/// Request/served-work counters exposed by the `stats` command.
///
/// Since the telemetry layer landed this is a *view*: the daemon keeps
/// these counts in lock-free registry counters and materializes a
/// `DaemonStats` on demand ([`Daemon::stats`], the `stats` command), so
/// the struct and the wire response are unchanged from the mutex era
/// while the storage can no longer be poisoned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Total requests handled (including failed ones).
    pub requests: u64,
    /// Requests that returned an error response.
    pub errors: u64,
    /// `attack` requests served.
    pub attacks: u64,
    /// Anonymized users processed across all attacks.
    pub attacked_users: u64,
    /// Users mapped to some auxiliary identity (not `⊥`).
    pub mapped_users: u64,
    /// `load_snapshot` + `add_auxiliary_users` requests served.
    pub corpus_updates: u64,
    /// Connections rejected by the max-connections cap.
    pub rejected_connections: u64,
    /// Connections dropped for violating a request limit (oversize
    /// request line or half-open read deadline).
    pub dropped_connections: u64,
}

/// The daemon's registry plus cached handles for every hot-path counter.
///
/// Handle lookups by label (`command_requests`, `error_kind`) go through
/// the registry's read lock — cheap, and poison-immune by construction.
struct DaemonMetrics {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    attacks: Arc<Counter>,
    attacked_users: Arc<Counter>,
    mapped_users: Arc<Counter>,
    corpus_updates: Arc<Counter>,
    rejected_connections: Arc<Counter>,
    dropped_connections: Arc<Counter>,
    connections_live: Arc<Gauge>,
    corpus_users: Arc<Gauge>,
    corpus_posts: Arc<Gauge>,
    corpus_generation: Arc<Gauge>,
    corpus_resident_arena_bytes: Arc<Gauge>,
    corpus_borrowed_arena_bytes: Arc<Gauge>,
    /// Requests per flushed attack batch — a **unitless** histogram
    /// (the bucket bounds read as counts, not seconds).
    batch_size: Arc<Histogram>,
    /// How long each flushed batch coalesced (first enqueue → flush).
    batch_window_seconds: Arc<Histogram>,
    /// Jobs waiting for a dispatch worker.
    queue_depth: Arc<Gauge>,
    /// Per-request stage timers, all billed on dispatch workers: time
    /// decoding the request (JSON parse + validation, or binary frame
    /// decode)…
    parse_seconds: Arc<Histogram>,
    /// …time between coming off the wire and execution start, minus the
    /// parse itself (coalescing window + job-queue wait)…
    queue_seconds: Arc<Histogram>,
    /// …time executing the command (the engine pass, or the corpus
    /// rebuild for updates)…
    engine_seconds: Arc<Histogram>,
    /// …and time serializing the finished reply into outbox bytes.
    emit_seconds: Arc<Histogram>,
    /// Served requests that arrived as newline-JSON lines.
    encoding_json: Arc<Counter>,
    /// Served requests that arrived as binary frames.
    encoding_binary: Arc<Counter>,
}

impl DaemonMetrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        for cmd in COMMANDS {
            let _ = registry.counter_with("daemon_command_requests_total", &[("cmd", cmd)]);
            let _ = registry.histogram_with("daemon_command_seconds", &[("cmd", cmd)]);
        }
        for kind in ERROR_KINDS {
            let _ = registry.counter_with("daemon_error_kind_total", &[("kind", kind)]);
        }
        for exactness in EXACTNESS_LABELS {
            let _ = registry.histogram_with("daemon_attack_seconds", &[("exactness", exactness)]);
        }
        Self {
            requests: registry.counter("daemon_requests_total"),
            errors: registry.counter("daemon_errors_total"),
            attacks: registry.counter("daemon_attacks_total"),
            attacked_users: registry.counter("daemon_attacked_users_total"),
            mapped_users: registry.counter("daemon_mapped_users_total"),
            corpus_updates: registry.counter("daemon_corpus_updates_total"),
            rejected_connections: registry.counter("daemon_rejected_connections_total"),
            dropped_connections: registry.counter("daemon_dropped_connections_total"),
            connections_live: registry.gauge("daemon_connections_live"),
            corpus_users: registry.gauge("corpus_users"),
            corpus_posts: registry.gauge("corpus_posts"),
            corpus_generation: registry.gauge("corpus_generation"),
            corpus_resident_arena_bytes: registry.gauge("corpus_resident_arena_bytes"),
            corpus_borrowed_arena_bytes: registry.gauge("corpus_borrowed_arena_bytes"),
            batch_size: registry.histogram("daemon_batch_size"),
            batch_window_seconds: registry.histogram("daemon_batch_window_seconds"),
            queue_depth: registry.gauge("daemon_queue_depth"),
            parse_seconds: registry.histogram("daemon_parse_seconds"),
            queue_seconds: registry.histogram("daemon_queue_seconds"),
            engine_seconds: registry.histogram("daemon_engine_seconds"),
            emit_seconds: registry.histogram("daemon_emit_seconds"),
            encoding_json: registry
                .counter_with("daemon_encoding_requests_total", &[("encoding", "json")]),
            encoding_binary: registry
                .counter_with("daemon_encoding_requests_total", &[("encoding", "binary")]),
            registry,
        }
    }

    fn command_requests(&self, cmd: &str) -> Arc<Counter> {
        self.registry.counter_with("daemon_command_requests_total", &[("cmd", cmd)])
    }

    fn command_seconds(&self, cmd: &str) -> Arc<Histogram> {
        self.registry.histogram_with("daemon_command_seconds", &[("cmd", cmd)])
    }

    fn error_kind(&self, kind: &'static str) -> Arc<Counter> {
        self.registry.counter_with("daemon_error_kind_total", &[("kind", kind)])
    }

    /// Attack latency histogram (wire arrival → engine completion),
    /// split by whether the request ran exact or approximate.
    fn attack_seconds(&self, exactness: &'static str) -> Arc<Histogram> {
        self.registry.histogram_with("daemon_attack_seconds", &[("exactness", exactness)])
    }

    /// Refresh the corpus gauges after a swap (or the initial load) and
    /// bump the generation.
    fn observe_corpus(&self, corpus: &PreparedCorpus) {
        let memory = corpus.memory_stats();
        self.corpus_users.set(corpus.n_users() as i64);
        self.corpus_posts.set(corpus.n_posts() as i64);
        self.corpus_resident_arena_bytes.set(memory.resident_arena_bytes as i64);
        self.corpus_borrowed_arena_bytes.set(memory.borrowed_arena_bytes as i64);
        self.corpus_generation.inc();
    }

    /// Materialize the classic [`DaemonStats`] view from the counters.
    fn stats(&self) -> DaemonStats {
        DaemonStats {
            requests: self.requests.get(),
            errors: self.errors.get(),
            attacks: self.attacks.get(),
            attacked_users: self.attacked_users.get(),
            mapped_users: self.mapped_users.get(),
            corpus_updates: self.corpus_updates.get(),
            rejected_connections: self.rejected_connections.get(),
            dropped_connections: self.dropped_connections.get(),
        }
    }
}

/// One complete request as the front thread extracted it — raw bytes,
/// never parsed on the front.
enum RawRequest {
    /// A trimmed newline-JSON request line.
    JsonLine(String),
    /// The checksum-verified payload of a binary `attack` frame.
    AttackFrame(Vec<u8>),
    /// The checksum-verified payload of a binary `add_auxiliary_users`
    /// frame.
    AddUsersFrame(Vec<u8>),
}

/// An `attack` request a worker parsed and validated, headed back to
/// the front thread's coalescing groups (or run solo when batching is
/// off).
struct ReadyAttack {
    conn: usize,
    /// When the request came off the wire — the latency clock.
    received: Instant,
    /// Worker time spent decoding + validating the request.
    parse_seconds: f64,
    /// The actual effective thread count the full parse produced.
    threads: usize,
    /// Exact pipeline or the approximate fast tier, from the request's
    /// `mode`/`margin` fields (JSON) or margin flag word (binary).
    exactness: ExactnessMode,
    attack: AttackConfig,
    forum: Forum,
    corpus: Arc<PreparedCorpus>,
}

/// Work for the dispatch pool.
enum Job {
    /// Parse + validate one raw request; corpus updates run to
    /// completion in the same job, attacks either run solo immediately
    /// (`solo`, when batching is off) or return to the front as a
    /// [`ReadyAttack`].
    Parse {
        conn: usize,
        received: Instant,
        raw: RawRequest,
        /// The front's zero-parse classification: `"attack"`,
        /// `"add_auxiliary_users"` or `"load_snapshot"`.
        label: &'static str,
        /// For attacks: the corpus `Arc` captured when the request came
        /// off the wire (`None` answers `no_corpus` *after* the parse,
        /// preserving the invalid_json > no_corpus precedence).
        corpus: Option<Arc<PreparedCorpus>>,
        /// Run the attack in this job instead of returning it (batch
        /// window zero).
        solo: bool,
    },
    /// A flushed batch: every item captured the same corpus `Arc`, the
    /// same effective thread count and the same exactness mode.
    Attack { corpus: Arc<PreparedCorpus>, threads: usize, items: Vec<ReadyAttack> },
}

/// A finished request headed back to the front thread: the response
/// line, fully serialized (trailing newline included) by the worker so
/// the front merely splices it into the outbox. `None` means the
/// handler panicked: close the connection without a response, like a
/// died per-connection thread in the old design.
struct Completion {
    conn: usize,
    bytes: Option<Vec<u8>>,
}

struct DaemonState {
    config: EngineConfig,
    limits: DaemonLimits,
    corpus: RwLock<Option<Arc<PreparedCorpus>>>,
    /// Serializes corpus *updates* (`load_snapshot`, `add_auxiliary_users`)
    /// end to end. The copy-on-write rebuild happens outside the `corpus`
    /// lock so attacks never block on it — but without this mutex two
    /// concurrent updates would both clone the same base and the second
    /// swap would silently discard the first one's ingest.
    update: Mutex<()>,
    /// Jobs for the dispatch pool, drained FIFO.
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    /// Finished responses headed back to the front thread.
    completions: Mutex<Vec<Completion>>,
    /// Parsed attacks headed back to the front thread's coalescing
    /// groups (batching on only).
    parsed: Mutex<Vec<ReadyAttack>>,
    /// Requests in flight anywhere in the pipeline: incremented when a
    /// `Parse` job is enqueued, decremented when the request's
    /// completion is pushed. Workers must not exit while nonzero — a
    /// parsed attack waiting in a coalescing group still needs a worker
    /// for its batch job.
    dispatched: AtomicUsize,
    metrics: DaemonMetrics,
    started: Instant,
    shutting_down: AtomicBool,
}

impl DaemonState {
    /// Clone the current corpus `Arc` (poison-immune: the slot only ever
    /// holds a fully built corpus, swapped in as the last step of an
    /// update, so the value is coherent even after a panicked writer).
    fn corpus(&self) -> Option<Arc<PreparedCorpus>> {
        self.corpus.read().unwrap_or_else(PoisonError::into_inner).clone()
    }

    fn swap_corpus(&self, next: PreparedCorpus) {
        let next = Arc::new(next);
        *self.corpus.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&next));
        // Gauges refreshed strictly *after* the swap: a scrape racing an
        // update must never describe a corpus newer than the one attacks
        // can actually observe in the slot.
        self.metrics.observe_corpus(&next);
    }

    fn push_completion(&self, conn: usize, bytes: Option<Vec<u8>>) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion { conn, bytes });
        // Saturating: the panic fence pushes a completion for *every*
        // conn its job touched, which can double-complete an item that
        // already answered before the panic.
        let _ =
            self.dispatched.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1));
    }

    /// Enqueue a request's `Parse` job and count it in flight.
    fn dispatch_request(&self, job: Job) {
        self.dispatched.fetch_add(1, Ordering::SeqCst);
        self.enqueue_job(job);
    }

    fn enqueue_job(&self, job: Job) {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        jobs.push_back(job);
        self.metrics.queue_depth.set(jobs.len() as i64);
        drop(jobs);
        self.jobs_cv.notify_one();
    }
}

/// A running attack service (see the [module docs](self)).
///
/// Dropping the handle does **not** stop the daemon; call
/// [`Daemon::request_shutdown`] (or send the `shutdown` command) and then
/// [`Daemon::join`].
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<DaemonState>,
    front_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl Daemon {
    /// Bind `addr` (e.g. `"127.0.0.1:7699"`, or port 0 for an ephemeral
    /// port — see [`Daemon::addr`]) and start serving with no corpus
    /// loaded; clients must `load_snapshot` or `add_auxiliary_users`
    /// before attacking. `config` supplies the default attack parameters
    /// and worker-pool shape; requests may override `top_k`,
    /// `n_landmarks`, `threads` and `seed` per call.
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: EngineConfig) -> std::io::Result<Self> {
        Self::bind_with_corpus(addr, config, None)
    }

    /// [`Daemon::bind`] with a corpus pre-loaded (the `repro serve` path:
    /// load the snapshot before accepting traffic).
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind_with_corpus<A: ToSocketAddrs>(
        addr: A,
        config: EngineConfig,
        corpus: Option<PreparedCorpus>,
    ) -> std::io::Result<Self> {
        Self::bind_with(addr, config, corpus, DaemonLimits::default())
    }

    /// [`Daemon::bind_with_corpus`] with explicit [`DaemonLimits`]
    /// (protocol hardening, coalescing window, worker count).
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        config: EngineConfig,
        corpus: Option<PreparedCorpus>,
        limits: DaemonLimits,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = DaemonMetrics::new();
        if let Some(corpus) = &corpus {
            metrics.observe_corpus(corpus);
        }
        let state = Arc::new(DaemonState {
            config,
            limits,
            corpus: RwLock::new(corpus.map(Arc::new)),
            update: Mutex::new(()),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            parsed: Mutex::new(Vec::new()),
            dispatched: AtomicUsize::new(0),
            metrics,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
        });
        info!(
            "daemon listening",
            addr = addr,
            corpus_users = state.metrics.corpus_users.get(),
            max_connections = limits.max_connections
        );
        let workers: Vec<JoinHandle<()>> = (0..limits.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        let front_state = Arc::clone(&state);
        let front_thread = std::thread::spawn(move || front_loop(listener, &front_state, workers));
        Ok(Self { addr, state, front_thread: Some(front_thread) })
    }

    /// The bound address (with the actual port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once shutdown has been requested (by a client or locally).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }

    /// Raise the shutdown flag locally (equivalent to a client sending
    /// the `shutdown` command).
    pub fn request_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
    }

    /// A copy of the served-work counters.
    #[must_use]
    pub fn stats(&self) -> DaemonStats {
        self.state.metrics.stats()
    }

    /// The daemon's metric registry — shared with the `metrics` wire
    /// command and any [`MetricsServer`](crate::metrics::MetricsServer)
    /// scrape endpoint; still readable after [`Daemon::join`] consumed
    /// the daemon (grab the `Arc` first).
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.state.metrics.registry)
    }

    /// Block until the daemon has shut down (flag raised, jobs drained,
    /// every connection closed), then reap its threads.
    ///
    /// # Panics
    /// Panics if the front loop itself panicked.
    pub fn join(mut self) {
        if let Some(h) = self.front_thread.take() {
            h.join().expect("daemon front loop panicked");
        }
    }
}

/// One accepted connection as the front thread tracks it.
struct Conn {
    stream: TcpStream,
    token: usize,
    /// Raw bytes read but not yet consumed as request lines.
    inbox: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    outbox: Vec<u8>,
    /// Set while `inbox` holds an incomplete request line — the clock
    /// the half-open read deadline runs on.
    partial_since: Option<Instant>,
    /// A request from this connection is queued or executing; the front
    /// thread neither reads the socket nor dispatches further lines
    /// until the completion arrives (per-connection request order, TCP
    /// backpressure on pipelining clients).
    in_flight: bool,
    /// The peer half-closed (EOF on read).
    peer_closed: bool,
    /// Close as soon as the outbox drains (shutdown, drop, EOF).
    closing: bool,
    /// Currently registered poller interest.
    interest: Interest,
}

/// One open coalescing group: attacks captured against the same corpus
/// `Arc` with the same effective thread count and the same exactness
/// mode, waiting for the window to elapse — and for every member's
/// worker-side parse to land. Only same-exactness requests fuse: an
/// approximate request must never drag an exact one onto the fast tier
/// (or vice versa), so the dial is part of the batch key.
struct BatchGroup {
    corpus: Arc<PreparedCorpus>,
    threads: usize,
    exactness: ExactnessMode,
    opened: Instant,
    /// Connections whose attack is still being parsed on a worker. The
    /// group never flushes while nonempty: the parses were dispatched
    /// inside the window, so their requests belong in this batch.
    pending: Vec<usize>,
    /// Parsed, validated members awaiting the flush.
    ready: Vec<ReadyAttack>,
}

/// The front thread: accept, read, extract lines, answer fast commands
/// inline, feed slow ones to the batcher/worker pool, write responses —
/// all multiplexed over one [`Poller`].
fn front_loop(listener: TcpListener, state: &Arc<DaemonState>, workers: Vec<JoinHandle<()>>) {
    let mut poller = Poller::new().unwrap_or_else(|_| Poller::tick());
    if poller.register(&listener, LISTENER_TOKEN, Interest::READ).is_err() {
        // The tick backend's register cannot fail; fall back so the
        // daemon still serves (inefficiently) instead of dying.
        poller = Poller::tick();
        let _ = poller.register(&listener, LISTENER_TOKEN, Interest::READ);
    }
    let mut listener = Some(listener);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut groups: Vec<BatchGroup> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut next_token: usize = LISTENER_TOKEN + 1;
    loop {
        let timeout = wait_timeout(&groups, state.limits.batch_window);
        let _ = poller.wait(&mut events, Some(timeout));

        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                if let Some(l) = &listener {
                    accept_ready(state, l, &mut poller, &mut conns, &mut next_token);
                }
                continue;
            }
            if let Some(conn) = conns.get_mut(&ev.token) {
                if ev.readable && !conn.in_flight && !conn.closing {
                    read_ready(state, &mut groups, conn);
                }
            }
            settle_conn(state, &mut poller, &mut conns, ev.token);
        }

        // File worker-parsed attacks into their coalescing groups (the
        // scanned key's pending entry resolves; a mismatching parse
        // re-files under the actual thread count).
        let ready: Vec<ReadyAttack> =
            std::mem::take(&mut *state.parsed.lock().unwrap_or_else(PoisonError::into_inner));
        for r in ready {
            file_parsed(&mut groups, r);
        }

        // Demux finished jobs back onto their connections, preserving
        // per-connection request order (in_flight gated the next line).
        let done: Vec<Completion> =
            std::mem::take(&mut *state.completions.lock().unwrap_or_else(PoisonError::into_inner));
        for c in done {
            // A completion for a conn still pending in a group means its
            // parse failed (or panicked): the batch must not wait for it.
            for g in &mut groups {
                g.pending.retain(|&t| t != c.conn);
            }
            if let Some(conn) = conns.get_mut(&c.conn) {
                conn.in_flight = false;
                match c.bytes {
                    Some(bytes) => conn.outbox.extend_from_slice(&bytes),
                    None => conn.closing = true,
                }
                pump(state, &mut groups, conn);
            }
            settle_conn(state, &mut poller, &mut conns, c.conn);
        }

        let shutting = state.shutting_down.load(Ordering::SeqCst);
        flush_groups(state, &mut groups, shutting);

        // Half-open read deadline: a peer that started a request and
        // stalled gets a typed error, not an immortal connection slot.
        let deadline = state.limits.read_deadline;
        let expired: Vec<usize> = conns
            .values()
            .filter(|c| {
                !c.in_flight
                    && !c.closing
                    && c.partial_since.is_some_and(|since| since.elapsed() > deadline)
            })
            .map(|c| c.token)
            .collect();
        for token in expired {
            if let Some(conn) = conns.get_mut(&token) {
                drop_conn_with_error(
                    state,
                    conn,
                    "read_deadline",
                    &format!(
                        "read deadline exceeded with a partial request ({:.1}s)",
                        deadline.as_secs_f64()
                    ),
                );
            }
            settle_conn(state, &mut poller, &mut conns, token);
        }

        if shutting {
            if let Some(l) = listener.take() {
                let _ = poller.deregister(&l, LISTENER_TOKEN);
                // Dropping the listener refuses new connections while
                // the drain below completes.
            }
            let idle: Vec<usize> = conns
                .values()
                .filter(|c| !c.in_flight && !head_message_complete(&c.inbox))
                .map(|c| c.token)
                .collect();
            for token in idle {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.closing = true;
                }
                settle_conn(state, &mut poller, &mut conns, token);
            }
            // `dispatched` covers parses still on a worker and parsed
            // attacks not yet flushed: breaking earlier would strand a
            // ReadyAttack the workers are waiting on and hang `join`.
            if conns.is_empty() && groups.is_empty() && state.dispatched.load(Ordering::SeqCst) == 0
            {
                break;
            }
        }
    }
    // Workers drain the job queue (orphaned jobs for already-closed
    // connections included) and exit on the shutdown flag.
    for w in workers {
        let _ = w.join();
    }
}

/// Next poll wait: the poll interval, shortened to the nearest batch
/// deadline so a coalescing window never overshoots by a full tick.
/// Groups still waiting on a worker-side parse keep the full interval —
/// their flush is gated on the parse landing, not on the clock.
fn wait_timeout(groups: &[BatchGroup], window: Duration) -> Duration {
    let mut timeout = POLL_INTERVAL;
    for g in groups {
        if g.pending.is_empty() {
            timeout = timeout.min(window.saturating_sub(g.opened.elapsed()));
        }
    }
    timeout
}

/// Whether the head of a connection's inbox is one complete request —
/// a full newline-terminated line, or a full binary frame. (A frame
/// with a malformed or oversized header counts as complete: pumping it
/// produces its error reply rather than waiting for more bytes.)
fn head_message_complete(inbox: &[u8]) -> bool {
    match inbox.first() {
        None => false,
        Some(&b) if b == FRAME_MAGIC[0] => {
            if inbox.len() < FRAME_HEADER_BYTES {
                return false;
            }
            let header: [u8; FRAME_HEADER_BYTES] =
                inbox[..FRAME_HEADER_BYTES].try_into().expect("8 header bytes");
            match frame::parse_header(&header, usize::MAX) {
                Ok(h) => inbox.len() >= h.frame_len(),
                Err(_) => true,
            }
        }
        Some(_) => inbox.contains(&b'\n'),
    }
}

/// Accept every pending connection (the listener is level-triggered but
/// nonblocking, so drain until `WouldBlock`).
fn accept_ready(
    state: &Arc<DaemonState>,
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Max-connections cap: answer over-cap peers with a typed
                // protocol error and close, instead of either queueing
                // them invisibly or starving established sessions.
                if conns.len() >= state.limits.max_connections {
                    state.metrics.rejected_connections.inc();
                    state.metrics.error_kind("connection_cap").inc();
                    reject_connection(stream, state.limits.max_connections);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if poller.register(&stream, token, Interest::READ).is_err() {
                    continue;
                }
                state.metrics.connections_live.inc();
                conns.insert(
                    token,
                    Conn {
                        stream,
                        token,
                        inbox: Vec::new(),
                        outbox: Vec::new(),
                        partial_since: None,
                        in_flight: false,
                        peer_closed: false,
                        closing: false,
                        interest: Interest::READ,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Send one error line to an over-cap connection and drop it. Bounded by
/// a short write timeout so a peer that never reads cannot stall the
/// front thread.
fn reject_connection(stream: TcpStream, cap: usize) {
    let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
    let mut stream = stream;
    let response = error_response(&format!("connection limit reached ({cap})"));
    let _ = stream.write_all(response.emit().as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Drain the socket into the connection's inbox (until `WouldBlock`,
/// EOF, or the inbox exceeds the request-size cap), then serve what
/// arrived.
fn read_ready(state: &Arc<DaemonState>, groups: &mut Vec<BatchGroup>, conn: &mut Conn) {
    let mut chunk = [0u8; 16 * 1024];
    while !conn.peer_closed && conn.inbox.len() <= state.limits.max_request_bytes {
        match conn.stream.read(&mut chunk) {
            Ok(0) => conn.peer_closed = true,
            Ok(n) => conn.inbox.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => conn.peer_closed = true,
        }
    }
    pump(state, groups, conn);
}

/// Serve every complete request the connection has buffered — binary
/// frames and JSON lines freely interleaved, detected per message by
/// the first byte — stopping at the first request that goes in flight
/// (per-connection request order; clients may pipeline, responses keep
/// request order). Then update the half-open bookkeeping on whatever
/// incomplete tail remains.
///
/// This is the whole of the front thread's per-request work: framing
/// and classification over raw bytes. Parsing, execution and reply
/// serialization all happen on dispatch workers.
fn pump(state: &Arc<DaemonState>, groups: &mut Vec<BatchGroup>, conn: &mut Conn) {
    while !conn.in_flight && !conn.closing {
        if conn.inbox.first() == Some(&FRAME_MAGIC[0]) {
            if !pump_frame(state, groups, conn) {
                break;
            }
            continue;
        }
        let Some(pos) = conn.inbox.iter().position(|&b| b == b'\n') else { break };
        let line_bytes: Vec<u8> = conn.inbox.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line_bytes);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        state.metrics.encoding_json.inc();
        handle_line(state, groups, conn, line);
    }
    if conn.inbox.is_empty() || head_message_complete(&conn.inbox) {
        conn.partial_since = None;
    } else {
        // A request line larger than the cap can never complete —
        // reject it now instead of buffering without bound. (Binary
        // frames never reach this: their cap is enforced from the
        // 8-byte header in `pump_frame`.)
        if !conn.in_flight && !conn.closing && conn.inbox.len() > state.limits.max_request_bytes {
            drop_conn_with_error(
                state,
                conn,
                "oversize_request",
                &format!("request exceeds {} byte limit", state.limits.max_request_bytes),
            );
            return;
        }
        // The deadline clock pauses while a request is in flight (the
        // tail cannot grow: the front stops reading the socket).
        if !conn.in_flight {
            conn.partial_since.get_or_insert_with(Instant::now);
        }
    }
}

/// Try to consume one binary frame from the head of the inbox. Returns
/// `false` when the frame is incomplete (wait for more bytes). A
/// malformed or oversized header is answered from the first 8 bytes —
/// before the payload is buffered, let alone allocated — and a checksum
/// mismatch (including JSON bytes injected inside a frame's declared
/// extent) closes the connection with a typed error.
fn pump_frame(state: &Arc<DaemonState>, groups: &mut Vec<BatchGroup>, conn: &mut Conn) -> bool {
    if conn.inbox.len() < FRAME_HEADER_BYTES {
        return false;
    }
    let header: [u8; FRAME_HEADER_BYTES] =
        conn.inbox[..FRAME_HEADER_BYTES].try_into().expect("8 header bytes");
    let parsed = match frame::parse_header(&header, state.limits.max_request_bytes) {
        Ok(h) => h,
        Err(e) => {
            drop_frame_error(state, conn, &e);
            return false;
        }
    };
    let total = parsed.frame_len();
    if conn.inbox.len() < total {
        return false;
    }
    let frame_bytes: Vec<u8> = conn.inbox.drain(..total).collect();
    let payload = &frame_bytes[FRAME_HEADER_BYTES..total - FRAME_TRAILER_BYTES];
    let trailer: [u8; FRAME_TRAILER_BYTES] =
        frame_bytes[total - FRAME_TRAILER_BYTES..].try_into().expect("8 trailer bytes");
    if let Err(e) = frame::verify_checksum(payload, &trailer) {
        drop_frame_error(state, conn, &e);
        return false;
    }
    state.metrics.encoding_binary.inc();
    let received = Instant::now();
    match parsed.tag {
        FrameTag::Attack => {
            let scanned_threads =
                frame::peek_attack_threads(payload).unwrap_or(state.config.n_threads);
            dispatch_attack(
                state,
                groups,
                conn,
                received,
                RawRequest::AttackFrame(payload.to_vec()),
                scanned_threads,
            );
        }
        FrameTag::AddAuxiliaryUsers => {
            conn.in_flight = true;
            state.dispatch_request(Job::Parse {
                conn: conn.token,
                received,
                raw: RawRequest::AddUsersFrame(payload.to_vec()),
                label: "add_auxiliary_users",
                corpus: None,
                solo: false,
            });
        }
    }
    true
}

/// Terminate a connection over a malformed frame: typed error line,
/// counted under the frame error's kind, closed once the line drains.
fn drop_frame_error(state: &Arc<DaemonState>, conn: &mut Conn, e: &FrameError) {
    drop_conn_with_error(state, conn, e.kind(), &e.to_string());
}

/// Classify one request line from its raw bytes and route it: bulk
/// commands (`attack`, `add_auxiliary_users`, `load_snapshot`) go to a
/// dispatch worker unparsed; everything else falls through to the
/// inline fast path.
fn handle_line(
    state: &Arc<DaemonState>,
    groups: &mut Vec<BatchGroup>,
    conn: &mut Conn,
    line: &str,
) {
    let received = Instant::now();
    // Zero-parse classification: a byte scan for the top-level "cmd"
    // key. Lines it cannot follow (escape-laden keys, no simple value)
    // fall through to the inline path's authoritative full parse.
    match frame::scan_top_level(line.as_bytes(), "cmd").as_deref() {
        Some("attack") => {
            let scanned_threads = frame::scan_top_level(line.as_bytes(), "threads")
                .and_then(|t| t.parse::<usize>().ok())
                .unwrap_or(state.config.n_threads);
            dispatch_attack(
                state,
                groups,
                conn,
                received,
                RawRequest::JsonLine(line.to_string()),
                scanned_threads,
            );
        }
        Some(bulk @ ("add_auxiliary_users" | "load_snapshot")) => {
            let label: &'static str =
                if bulk == "load_snapshot" { "load_snapshot" } else { "add_auxiliary_users" };
            conn.in_flight = true;
            state.dispatch_request(Job::Parse {
                conn: conn.token,
                received,
                raw: RawRequest::JsonLine(line.to_string()),
                label,
                corpus: None,
                solo: false,
            });
        }
        _ => handle_control_line(state, groups, conn, received, line),
    }
}

/// The inline path: full-parse the line on the front thread and answer
/// fast commands (`stats`, `metrics`, `shutdown`, protocol errors)
/// immediately, so a stats probe or a scrape never queues behind an
/// attack. Bulk commands land here only when the byte scanner could not
/// classify the line (pathological but legal JSON) — they are handed to
/// a worker like any other bulk request.
fn handle_control_line(
    state: &Arc<DaemonState>,
    groups: &mut Vec<BatchGroup>,
    conn: &mut Conn,
    received: Instant,
    line: &str,
) {
    let parsed = Json::parse(line);
    let (label, shutdown): (&'static str, bool) = match &parsed {
        Err(_) => ("invalid", false),
        Ok(request) => match request.get("cmd").and_then(Json::as_str) {
            None => ("invalid", false),
            Some("load_snapshot") => ("load_snapshot", false),
            Some("add_auxiliary_users") => ("add_auxiliary_users", false),
            Some("attack") => ("attack", false),
            Some("stats") => ("stats", false),
            Some("metrics") => ("metrics", false),
            Some("shutdown") => ("shutdown", true),
            Some(_) => ("unknown", false),
        },
    };
    match label {
        "load_snapshot" | "add_auxiliary_users" => {
            conn.in_flight = true;
            state.dispatch_request(Job::Parse {
                conn: conn.token,
                received,
                raw: RawRequest::JsonLine(line.to_string()),
                label,
                corpus: None,
                solo: false,
            });
        }
        "attack" => {
            let request = parsed.expect("label implies the request parsed");
            let scanned_threads =
                request.get("threads").and_then(Json::as_usize).unwrap_or(state.config.n_threads);
            dispatch_attack(
                state,
                groups,
                conn,
                received,
                RawRequest::JsonLine(line.to_string()),
                scanned_threads,
            );
        }
        _ => {
            let result: Result<Vec<(String, Json)>, CmdError> = match &parsed {
                Err(e) => Err(CmdError::new("invalid_json", format!("invalid JSON: {e}"))),
                Ok(request) => match label {
                    "invalid" => Err(CmdError::new("missing_cmd", "missing cmd")),
                    "stats" => cmd_stats(state),
                    "metrics" => {
                        Ok(vec![("metrics".into(), registry_to_json(&state.metrics.registry))])
                    }
                    "shutdown" => Ok(Vec::new()),
                    _unknown => {
                        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or_default();
                        Err(CmdError::new("unknown_cmd", format!("unknown cmd {cmd:?}")))
                    }
                },
            };
            let response = finalize_response(state, label, received, result);
            queue_response(conn, &response);
            if shutdown {
                state.shutting_down.store(true, Ordering::SeqCst);
                conn.closing = true;
            }
        }
    }
}

/// Put one raw `attack` request in flight: capture the corpus `Arc`
/// (a swap landing later affects later requests, not this one — and
/// batches group by this `Arc`, so a swap mid-window closes the old
/// group), file the connection into the coalescing group for the
/// *scanned* batch key, and dispatch the parse to a worker. With
/// batching off the worker runs the attack in the same job; with no
/// corpus loaded the worker answers `no_corpus` after its parse (so
/// invalid JSON still outranks it, exactly like the fully inline era).
fn dispatch_attack(
    state: &Arc<DaemonState>,
    groups: &mut Vec<BatchGroup>,
    conn: &mut Conn,
    received: Instant,
    raw: RawRequest,
    scanned_threads: usize,
) {
    let corpus = state.corpus();
    let solo = state.limits.batch_window.is_zero();
    conn.in_flight = true;
    if let (Some(corpus), false) = (&corpus, solo) {
        file_pending(groups, corpus, scanned_threads, conn.token);
    }
    state.dispatch_request(Job::Parse {
        conn: conn.token,
        received,
        raw,
        label: "attack",
        corpus,
        solo,
    });
}

/// File a connection's in-flight parse into the coalescing group for
/// its (corpus, scanned threads) key, opening a new group (and its
/// window clock) if none matches.
fn file_pending(
    groups: &mut Vec<BatchGroup>,
    corpus: &Arc<PreparedCorpus>,
    threads: usize,
    token: usize,
) {
    if let Some(group) =
        groups.iter_mut().find(|g| g.threads == threads && Arc::ptr_eq(&g.corpus, corpus))
    {
        group.pending.push(token);
        return;
    }
    groups.push(BatchGroup {
        corpus: Arc::clone(corpus),
        threads,
        exactness: ExactnessMode::Exact,
        opened: Instant::now(),
        pending: vec![token],
        ready: Vec::new(),
    });
}

/// File one worker-parsed attack: resolve its pending entry (the token
/// is unique to this in-flight request, so it is cleared from every
/// group — the byte scan could not know the request's exactness), then
/// place it by its *actual* (thread count, exactness) key — re-filing
/// into (or opening) the right group when the byte scan and the full
/// parse disagree.
fn file_parsed(groups: &mut Vec<BatchGroup>, r: ReadyAttack) {
    for g in groups.iter_mut() {
        g.pending.retain(|&t| t != r.conn);
    }
    if let Some(g) = groups.iter_mut().find(|g| {
        g.threads == r.threads && g.exactness == r.exactness && Arc::ptr_eq(&g.corpus, &r.corpus)
    }) {
        g.ready.push(r);
        return;
    }
    groups.push(BatchGroup {
        corpus: Arc::clone(&r.corpus),
        threads: r.threads,
        exactness: r.exactness,
        opened: Instant::now(),
        pending: Vec::new(),
        ready: vec![r],
    });
}

/// Hand every expired group (all of them when `force` — shutdown) to
/// the worker pool as one fused batch job. A group whose members are
/// still being parsed holds until every parse lands (the requests were
/// framed inside the window; sequential parsing must not fragment the
/// batch), then flushes on the next tick.
fn flush_groups(state: &Arc<DaemonState>, groups: &mut Vec<BatchGroup>, force: bool) {
    let window = state.limits.batch_window;
    let mut i = 0;
    while i < groups.len() {
        let expired = force || window.is_zero() || groups[i].opened.elapsed() >= window;
        if expired && groups[i].pending.is_empty() {
            let group = groups.swap_remove(i);
            if group.ready.is_empty() {
                // Every member's parse failed — nothing ran, no batch.
                continue;
            }
            state.metrics.batch_size.record_secs(group.ready.len() as f64);
            state.metrics.batch_window_seconds.record(group.opened.elapsed());
            state.enqueue_job(Job::Attack {
                corpus: group.corpus,
                threads: group.threads,
                items: group.ready,
            });
        } else {
            i += 1;
        }
    }
}

/// Append one response line to the connection's outbox.
fn queue_response(conn: &mut Conn, response: &Json) {
    conn.outbox.extend_from_slice(response.emit().as_bytes());
    conn.outbox.push(b'\n');
}

/// Terminate a misbehaving connection: best-effort error line, counted
/// in the stats, closed once the line drains.
fn drop_conn_with_error(
    state: &Arc<DaemonState>,
    conn: &mut Conn,
    kind: &'static str,
    message: &str,
) {
    state.metrics.dropped_connections.inc();
    state.metrics.error_kind(kind).inc();
    queue_response(conn, &error_response(message));
    conn.closing = true;
}

/// Flush, close and re-arm one connection after any activity: write as
/// much of the outbox as the socket accepts, drop the connection when
/// it is finished (or its socket died), and sync the poller interest to
/// what it is actually waiting for.
fn settle_conn(
    state: &Arc<DaemonState>,
    poller: &mut Poller,
    conns: &mut HashMap<usize, Conn>,
    token: usize,
) {
    let Some(conn) = conns.get_mut(&token) else { return };
    let alive = flush_outbox(conn);
    let drained_eof = conn.peer_closed && !conn.in_flight && !head_message_complete(&conn.inbox);
    if !alive || ((conn.closing || drained_eof) && conn.outbox.is_empty()) {
        let conn = conns.remove(&token).expect("connection was just looked up");
        let _ = poller.deregister(&conn.stream, token);
        state.metrics.connections_live.dec();
        return;
    }
    // Steady state: read only when this connection may dispatch another
    // line; write only while response bytes are queued.
    let desired = Interest {
        readable: !conn.in_flight && !conn.peer_closed && !conn.closing,
        writable: !conn.outbox.is_empty(),
    };
    if desired != conn.interest && poller.modify(&conn.stream, token, desired).is_ok() {
        conn.interest = desired;
    }
}

/// Write as much of the outbox as the socket accepts right now.
/// Returns `false` when the socket is dead.
fn flush_outbox(conn: &mut Conn) -> bool {
    while !conn.outbox.is_empty() {
        match conn.stream.write(&conn.outbox) {
            Ok(0) => return false,
            Ok(n) => {
                conn.outbox.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// A dispatch worker: pop jobs until shutdown, executing each with a
/// panic fence so one poisoned request cannot take the pool down.
fn worker_loop(state: &Arc<DaemonState>) {
    loop {
        let job = {
            let mut jobs = state.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = jobs.pop_front() {
                    state.metrics.queue_depth.set(jobs.len() as i64);
                    break Some(job);
                }
                // Exit only when nothing is in flight anywhere in the
                // pipeline: a parsed attack waiting in a coalescing
                // group still becomes a batch job for this pool.
                if state.shutting_down.load(Ordering::SeqCst)
                    && state.dispatched.load(Ordering::SeqCst) == 0
                {
                    break None;
                }
                let (guard, _) = state
                    .jobs_cv
                    .wait_timeout(jobs, POLL_INTERVAL)
                    .unwrap_or_else(PoisonError::into_inner);
                jobs = guard;
            }
        };
        let Some(job) = job else { return };
        run_job(state, job);
    }
}

/// Execute one job; a panicking handler closes its connection(s)
/// without a response — the moral equivalent of a died
/// thread-per-connection handler — instead of wedging the front loop on
/// a completion that never comes.
fn run_job(state: &Arc<DaemonState>, job: Job) {
    let conns: Vec<usize> = match &job {
        Job::Attack { items, .. } => items.iter().map(|i| i.conn).collect(),
        Job::Parse { conn, .. } => vec![*conn],
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job {
        Job::Parse { conn, received, raw, label, corpus, solo } => {
            run_parse_job(state, conn, received, raw, label, corpus, solo);
        }
        Job::Attack { corpus, threads, items } => run_attack_job(state, &corpus, threads, items),
    }));
    if outcome.is_err() {
        for conn in conns {
            state.push_completion(conn, None);
        }
    }
}

/// Serialize a finished response into its wire line (the emit billed to
/// `daemon_emit_seconds`) and hand it back to the front thread.
fn respond(
    state: &Arc<DaemonState>,
    conn: usize,
    label: &str,
    received: Instant,
    result: Result<Vec<(String, Json)>, CmdError>,
) {
    let response = finalize_response(state, label, received, result);
    let timer = SpanTimer::new(Arc::clone(&state.metrics.emit_seconds));
    let mut bytes = response.emit().into_bytes();
    bytes.push(b'\n');
    timer.stop();
    state.push_completion(conn, Some(bytes));
}

/// Record the queue stage for one request: wire arrival → execution
/// start, minus the parse itself.
fn record_queue(state: &Arc<DaemonState>, received: Instant, parse_seconds: f64) {
    state
        .metrics
        .queue_seconds
        .record_secs((received.elapsed().as_secs_f64() - parse_seconds).max(0.0));
}

/// Parse + validate one raw request on a worker. Corpus updates run to
/// completion here; a valid attack either runs solo (batching off) or
/// returns to the front as a [`ReadyAttack`] for its coalescing group.
#[allow(clippy::too_many_arguments)]
fn run_parse_job(
    state: &Arc<DaemonState>,
    conn: usize,
    received: Instant,
    raw: RawRequest,
    label: &'static str,
    corpus: Option<Arc<PreparedCorpus>>,
    solo: bool,
) {
    let parse_timer = SpanTimer::new(Arc::clone(&state.metrics.parse_seconds));
    // Decode the raw bytes into (attack, forum, threads) for attacks, a
    // Forum for ingests, or the parsed request for load_snapshot — any
    // error ends the request right here with the same kind, message and
    // command label the fully inline era produced.
    match raw {
        RawRequest::JsonLine(line) => {
            let request = match Json::parse(&line) {
                Ok(request) => request,
                Err(e) => {
                    let parse_seconds = parse_timer.stop().as_secs_f64();
                    record_queue(state, received, parse_seconds);
                    // Unparseable lines are billed to the "invalid"
                    // command, exactly like the front-thread era.
                    return respond(
                        state,
                        conn,
                        "invalid",
                        received,
                        Err(CmdError::new("invalid_json", format!("invalid JSON: {e}"))),
                    );
                }
            };
            match label {
                "attack" => {
                    let parsed = parse_attack_request(state, &request);
                    finish_attack_parse(state, conn, received, parse_timer, corpus, solo, parsed);
                }
                "add_auxiliary_users" => {
                    let chunk = request
                        .get("forum")
                        .ok_or("missing forum")
                        .and_then(|v| forum_from_json(v).map_err(|_| "invalid forum"));
                    let parse_seconds = parse_timer.stop().as_secs_f64();
                    record_queue(state, received, parse_seconds);
                    let result = match chunk {
                        Ok(chunk) => {
                            let timer = SpanTimer::new(Arc::clone(&state.metrics.engine_seconds));
                            let result = cmd_add_auxiliary_users(state, chunk);
                            timer.stop();
                            result
                        }
                        Err(e) => Err(CmdError::new("invalid_argument", e)),
                    };
                    respond(state, conn, label, received, result);
                }
                _ => {
                    let parse_seconds = parse_timer.stop().as_secs_f64();
                    record_queue(state, received, parse_seconds);
                    let timer = SpanTimer::new(Arc::clone(&state.metrics.engine_seconds));
                    let result = cmd_load_snapshot(state, &request);
                    timer.stop();
                    respond(state, conn, label, received, result);
                }
            }
        }
        RawRequest::AttackFrame(payload) => {
            let parsed = frame::decode_attack_payload(&payload)
                .map(|p| {
                    let mut attack = state.config.attack.clone();
                    if let Some(k) = p.options.top_k {
                        attack.top_k = k;
                    }
                    if let Some(h) = p.options.n_landmarks {
                        attack.n_landmarks = h;
                    }
                    if let Some(s) = p.options.seed {
                        attack.seed = s;
                    }
                    let threads = p.options.threads.unwrap_or(state.config.n_threads);
                    let exactness = match p.options.approx_margin {
                        Some(margin) => ExactnessMode::Approx { margin },
                        None => ExactnessMode::Exact,
                    };
                    (attack, p.forum, threads, exactness)
                })
                .map_err(|e| CmdError::new("invalid_argument", e));
            finish_attack_parse(state, conn, received, parse_timer, corpus, solo, parsed);
        }
        RawRequest::AddUsersFrame(payload) => {
            let chunk = frame::decode_add_users_payload(&payload);
            let parse_seconds = parse_timer.stop().as_secs_f64();
            record_queue(state, received, parse_seconds);
            let result = match chunk {
                Ok(chunk) => {
                    let timer = SpanTimer::new(Arc::clone(&state.metrics.engine_seconds));
                    let result = cmd_add_auxiliary_users(state, chunk);
                    timer.stop();
                    result
                }
                Err(e) => Err(CmdError::new("invalid_argument", e)),
            };
            respond(state, conn, "add_auxiliary_users", received, result);
        }
    }
}

/// Close out an attack's parse phase: an error answers immediately (the
/// front unblocks its coalescing group on the completion), `no_corpus`
/// is answered after the parse (invalid requests outrank it), and a
/// valid request runs solo or returns to the front for batching.
#[allow(clippy::too_many_arguments)]
fn finish_attack_parse(
    state: &Arc<DaemonState>,
    conn: usize,
    received: Instant,
    parse_timer: SpanTimer,
    corpus: Option<Arc<PreparedCorpus>>,
    solo: bool,
    parsed: Result<(AttackConfig, Forum, usize, ExactnessMode), CmdError>,
) {
    let parse_seconds = parse_timer.stop().as_secs_f64();
    // `no_corpus` outranks per-field validation (`invalid_argument`),
    // matching the inline era where the corpus slot was checked before
    // the request body — while invalid JSON / a bad frame still outrank
    // both (answered before this function runs).
    let Some(corpus) = corpus else {
        record_queue(state, received, parse_seconds);
        return respond(
            state,
            conn,
            "attack",
            received,
            Err(CmdError::new(
                "no_corpus",
                "no corpus loaded (send load_snapshot or add_auxiliary_users)",
            )),
        );
    };
    let (attack, forum, threads, exactness) = match parsed {
        Ok(parts) => parts,
        Err(e) => {
            record_queue(state, received, parse_seconds);
            return respond(state, conn, "attack", received, Err(e));
        }
    };
    // An approximate request against a corpus with no quantized mirror
    // is a typed error when on-the-fly quantization is disabled — never
    // a silent exact fallback: the client asked for the fast tier and
    // must learn it cannot be served, not get a quietly slower answer.
    if exactness.is_approx() && corpus.quantized().is_none() && !state.limits.runtime_quantization {
        record_queue(state, received, parse_seconds);
        return respond(
            state,
            conn,
            "attack",
            received,
            Err(CmdError::new(
                "no_quantized_arenas",
                "corpus has no quantized arenas and runtime quantization is disabled \
                 (load a v3 snapshot with quantized sections, or enable runtime quantization)",
            )),
        );
    }
    let ready =
        ReadyAttack { conn, received, parse_seconds, threads, exactness, attack, forum, corpus };
    if solo {
        let corpus = Arc::clone(&ready.corpus);
        let threads = ready.threads;
        run_attack_job(state, &corpus, threads, vec![ready]);
    } else {
        state.parsed.lock().unwrap_or_else(PoisonError::into_inner).push(ready);
    }
}

/// Execute and demux one attack batch of parsed, validated requests.
/// Single-item batches (always the case with `batch_window == 0`) take
/// the classic solo `run_prepared` path; larger ones run the fused
/// `run_prepared_batch` — both bit-identical per request.
fn run_attack_job(
    state: &Arc<DaemonState>,
    corpus: &Arc<PreparedCorpus>,
    threads: usize,
    items: Vec<ReadyAttack>,
) {
    if items.is_empty() {
        return;
    }
    for item in &items {
        record_queue(state, item.received, item.parse_seconds);
    }
    // Batches group by exactness (part of the coalescing key), so the
    // whole job runs one mode; solo jobs trivially agree with item 0.
    let exactness = items[0].exactness;
    let engine_start = Instant::now();
    let outcomes: Vec<EngineOutcome> = if items.len() == 1 {
        let item = &items[0];
        let engine = Engine::new(EngineConfig {
            n_threads: threads,
            attack: item.attack.clone(),
            exactness,
            ..state.config.clone()
        });
        vec![corpus.attack(&engine, &item.forum)]
    } else {
        let engine =
            Engine::new(EngineConfig { n_threads: threads, exactness, ..state.config.clone() });
        let requests: Vec<BatchRequest<'_>> = items
            .iter()
            .map(|item| BatchRequest { attack: item.attack.clone(), anonymized: &item.forum })
            .collect();
        corpus.attack_batch(&engine, &requests)
    };
    // Each request experienced the whole fused pass — the engine stage
    // is the batch's wall time, recorded per request like
    // `daemon_command_seconds`.
    let engine_elapsed = engine_start.elapsed();
    let exactness_label = if exactness.is_approx() { "approx" } else { "exact" };
    for (item, outcome) in items.iter().zip(outcomes) {
        state.metrics.engine_seconds.record(engine_elapsed);
        state.metrics.attack_seconds(exactness_label).record(item.received.elapsed());
        state.metrics.attacks.inc();
        state.metrics.attacked_users.add(item.forum.n_users as u64);
        state
            .metrics
            .mapped_users
            .add(outcome.mapping.iter().filter(|m| m.is_some()).count() as u64);
        // Per-stage latency histograms across requests — the engine
        // report flows into the daemon's registry.
        outcome.report.record_into(&state.metrics.registry);
        let mapping = outcome.mapping.iter().map(|m| m.map_or(Json::Null, Json::int)).collect();
        let candidates = outcome
            .candidates
            .iter()
            .map(|c| Json::Arr(c.iter().map(|&v| Json::int(v)).collect()))
            .collect();
        let fields = vec![
            ("mapping".into(), Json::Arr(mapping)),
            ("candidates".into(), Json::Arr(candidates)),
            ("report".into(), report_to_json(&outcome.report)),
        ];
        respond(state, item.conn, "attack", item.received, Ok(fields));
    }
}

/// Resolve one attack request's forum, per-request overrides and
/// effective thread count against the daemon's defaults (same field
/// order — and therefore the same first error — as the pre-batching
/// daemon).
fn parse_attack_request(
    state: &Arc<DaemonState>,
    request: &Json,
) -> Result<(AttackConfig, Forum, usize, ExactnessMode), CmdError> {
    let anonymized = match request
        .get("forum")
        .ok_or_else(|| "missing forum".to_string())
        .and_then(forum_from_json)
    {
        Ok(f) => f,
        Err(e) => return Err(CmdError::new("invalid_argument", e)),
    };
    let mut attack = state.config.attack.clone();
    if let Some(k) = request.get("top_k") {
        match k.as_usize() {
            Some(k) => attack.top_k = k,
            None => return Err(CmdError::new("invalid_argument", "invalid top_k")),
        }
    }
    if let Some(h) = request.get("n_landmarks") {
        match h.as_usize() {
            Some(h) => attack.n_landmarks = h,
            None => return Err(CmdError::new("invalid_argument", "invalid n_landmarks")),
        }
    }
    if let Some(s) = request.get("seed") {
        match s.as_usize() {
            Some(s) => attack.seed = s as u64,
            None => return Err(CmdError::new("invalid_argument", "invalid seed")),
        }
    }
    let threads = match request.get("threads") {
        None => state.config.n_threads,
        Some(t) => match t.as_usize() {
            Some(t) => t,
            None => return Err(CmdError::new("invalid_argument", "invalid threads")),
        },
    };
    let approx = match request.get("mode") {
        None => false,
        Some(m) => match m.as_str() {
            Some("exact") => false,
            Some("approx") => true,
            _ => {
                return Err(CmdError::new(
                    "invalid_argument",
                    "invalid mode (expected \"exact\" or \"approx\")",
                ))
            }
        },
    };
    let exactness = match (approx, request.get("margin")) {
        (false, None) => ExactnessMode::Exact,
        (false, Some(_)) => {
            return Err(CmdError::new("invalid_argument", "margin requires \"mode\": \"approx\""))
        }
        (true, None) => ExactnessMode::Approx { margin: DEFAULT_APPROX_MARGIN },
        (true, Some(m)) => match m.as_f64() {
            Some(margin) if margin.is_finite() && margin >= 0.0 => ExactnessMode::Approx { margin },
            _ => {
                return Err(CmdError::new(
                    "invalid_argument",
                    "invalid margin (expected a finite number >= 0)",
                ))
            }
        },
    };
    Ok((attack, anonymized, threads, exactness))
}

/// A failed command: the error-kind label for
/// `daemon_error_kind_total` plus the wire message.
struct CmdError {
    kind: &'static str,
    message: String,
}

impl CmdError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self { kind, message: message.into() }
    }
}

/// Turn a handler result into the wire response and account for it:
/// latency sample (from wire arrival through queueing and execution),
/// per-command and error-kind counters, the slow-request log line, and
/// the served-request totals. Counted after the handler, before the
/// response is written — a `stats` response reports the requests
/// *before* it, not itself.
fn finalize_response(
    state: &Arc<DaemonState>,
    label: &str,
    received: Instant,
    result: Result<Vec<(String, Json)>, CmdError>,
) -> Json {
    let timer = SpanTimer::starting_at(state.metrics.command_seconds(label), received);
    let response = match result {
        Ok(fields) => ok_response(fields),
        Err(e) => {
            state.metrics.error_kind(e.kind).inc();
            error_response(&e.message)
        }
    };
    state.metrics.command_requests(label).inc();
    let elapsed = timer.stop();
    if elapsed >= state.limits.slow_request_threshold {
        warn!(
            "slow request",
            cmd = label,
            seconds = format!("{:.3}", elapsed.as_secs_f64()),
            corpus_generation = state.metrics.corpus_generation.get(),
            corpus_users = state.metrics.corpus_users.get(),
            request_users =
                response.get("mapping").and_then(Json::as_array).map_or(0, <[Json]>::len),
            stages = stage_breakdown(&response)
        );
    }
    state.metrics.requests.inc();
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        state.metrics.errors.inc();
    }
    response
}

/// Compact `stage=secs` breakdown from a response's embedded report, for
/// the slow-request log line (`"-"` when the response carries none).
fn stage_breakdown(response: &Json) -> String {
    let Some(stages) =
        response.get("report").and_then(|r| r.get("stages")).and_then(Json::as_array)
    else {
        return "-".into();
    };
    let parts: Vec<String> = stages
        .iter()
        .filter_map(|s| {
            let name = s.get("stage").and_then(Json::as_str)?;
            let seconds = s.get("seconds").and_then(Json::as_f64)?;
            Some(format!("{name}={seconds:.3}s"))
        })
        .collect();
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(" ")
    }
}

fn cmd_load_snapshot(
    state: &Arc<DaemonState>,
    request: &Json,
) -> Result<Vec<(String, Json)>, CmdError> {
    let Some(path) = request.get("path").and_then(Json::as_str) else {
        return Err(CmdError::new("invalid_argument", "missing path"));
    };
    // Optional `"mode": "mmap" | "owned"` — default zero-copy.
    let mode = match request.get("mode").and_then(Json::as_str) {
        None | Some("mmap") => LoadMode::Mapped,
        Some("owned") => LoadMode::Owned,
        Some(other) => {
            return Err(CmdError::new(
                "invalid_argument",
                format!("invalid load mode {other:?} (mmap or owned)"),
            ))
        }
    };
    let _updating = state.update.lock().unwrap_or_else(PoisonError::into_inner);
    match PreparedCorpus::load_timed_with(Path::new(path), mode) {
        Ok((corpus, seconds)) => {
            let users = corpus.n_users();
            let posts = corpus.n_posts();
            let memory = corpus.memory_stats();
            let mapped = corpus.is_mapped();
            state.swap_corpus(corpus);
            state.metrics.corpus_updates.inc();
            info!(
                "corpus loaded",
                path = path,
                users = users,
                posts = posts,
                generation = state.metrics.corpus_generation.get()
            );
            Ok(vec![
                ("users".into(), Json::int(users)),
                ("posts".into(), Json::int(posts)),
                ("seconds".into(), Json::Num(seconds)),
                ("mapped".into(), Json::Bool(mapped)),
                ("resident_arena_bytes".into(), Json::int(memory.resident_arena_bytes)),
                ("borrowed_arena_bytes".into(), Json::int(memory.borrowed_arena_bytes)),
            ])
        }
        Err(e) => Err(CmdError::new("snapshot_load", format!("snapshot load failed: {e}"))),
    }
}

/// Ingest one auxiliary-user chunk. The forum arrives already decoded —
/// the worker bills its parse (JSON or binary frame) to
/// `daemon_parse_seconds` before this runs.
fn cmd_add_auxiliary_users(
    state: &Arc<DaemonState>,
    chunk: Forum,
) -> Result<Vec<(String, Json)>, CmdError> {
    // Copy-on-write under the update lock: clone the current corpus (or
    // bootstrap from the chunk alone), extend it outside the `corpus`
    // lock so attacks stay unblocked, then swap the slot. The update
    // lock makes concurrent ingests append sequentially instead of both
    // building on the same base and losing one chunk at the swap.
    let _updating = state.update.lock().unwrap_or_else(PoisonError::into_inner);
    let current = state.corpus();
    let next = match current {
        Some(corpus) => {
            let mut next = (*corpus).clone();
            next.append_users(&chunk);
            next
        }
        None => PreparedCorpus::build(chunk, state.config.attack.classifier),
    };
    let users = next.n_users();
    let posts = next.n_posts();
    state.swap_corpus(next);
    state.metrics.corpus_updates.inc();
    Ok(vec![("users".into(), Json::int(users)), ("posts".into(), Json::int(posts))])
}

fn cmd_stats(state: &Arc<DaemonState>) -> Result<Vec<(String, Json)>, CmdError> {
    let stats = state.metrics.stats();
    let (users, posts) = state.corpus().map_or((0, 0), |c| (c.n_users(), c.n_posts()));
    Ok(vec![
        ("corpus_users".into(), Json::int(users)),
        ("corpus_posts".into(), Json::int(posts)),
        ("requests".into(), Json::Num(stats.requests as f64)),
        ("errors".into(), Json::Num(stats.errors as f64)),
        ("attacks".into(), Json::Num(stats.attacks as f64)),
        ("attacked_users".into(), Json::Num(stats.attacked_users as f64)),
        ("mapped_users".into(), Json::Num(stats.mapped_users as f64)),
        ("corpus_updates".into(), Json::Num(stats.corpus_updates as f64)),
        ("rejected_connections".into(), Json::Num(stats.rejected_connections as f64)),
        ("dropped_connections".into(), Json::Num(stats.dropped_connections as f64)),
        ("uptime_seconds".into(), Json::Num(state.started.elapsed().as_secs_f64())),
    ])
}

/// Default engine configuration for a daemon: the paper-default attack
/// with machine parallelism (`n_threads = 0`).
#[must_use]
pub fn default_config() -> EngineConfig {
    EngineConfig { attack: AttackConfig::default(), ..EngineConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::{Forum, ForumConfig};
    use std::thread;

    /// Pins the `swap_corpus` ordering fix: the slot is swapped *before*
    /// the gauges are refreshed, so a scrape racing an update may see a
    /// stale (smaller) gauge, but never a gauge describing a corpus newer
    /// than the one attacks can observe. With the old order (gauges
    /// first) a strictly-growing sequence of swaps makes the inverted
    /// window directly observable: `gauge_users > slot_users`.
    #[test]
    fn corpus_gauges_never_lead_the_slot_during_swaps() {
        let base = Forum::generate(&ForumConfig::tiny(), 42);
        let chunk = Forum::generate(&ForumConfig::tiny(), 77);
        let mut corpora = Vec::new();
        let mut corpus = PreparedCorpus::build(base, Default::default());
        for _ in 0..16 {
            corpus.append_users(&chunk);
            corpora.push(corpus.clone());
        }

        let state = Arc::new(DaemonState {
            config: default_config(),
            limits: DaemonLimits::default(),
            corpus: RwLock::new(None),
            update: Mutex::new(()),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            parsed: Mutex::new(Vec::new()),
            dispatched: AtomicUsize::new(0),
            metrics: DaemonMetrics::new(),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
        });

        let swapper = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                for corpus in corpora {
                    state.swap_corpus(corpus);
                }
            })
        };
        while !swapper.is_finished() {
            // Sample gauge first, slot second: if the implementation ever
            // publishes gauges before the swap, the gauge can describe a
            // corpus the slot does not hold yet and this inverts.
            let gauge_users = state.metrics.corpus_users.get();
            let slot_users = state.corpus().map_or(0, |c| c.n_users() as i64);
            assert!(
                slot_users >= gauge_users,
                "corpus_users gauge ({gauge_users}) leads the corpus slot ({slot_users})"
            );
        }
        swapper.join().unwrap();
        assert_eq!(state.metrics.corpus_users.get(), state.corpus().unwrap().n_users() as i64);
    }
}
