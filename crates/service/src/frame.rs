//! Length-prefixed binary frames for bulk payloads, plus the front
//! thread's zero-parse request classifier.
//!
//! ## Why frames
//!
//! The newline-JSON protocol ([`protocol`](crate::protocol)) is kept for
//! every control command and as a fully supported legacy path for the
//! bulk ones — but a JSON `forum` is expensive on both sides of the
//! wire: numbers print as text, every post is re-escaped, and the
//! receiver re-validates character by character. The two bulk commands
//! (`attack`, `add_auxiliary_users`) therefore also speak a binary
//! encoding whose `forum` body **reuses the snapshot codec's
//! little-endian byte layout** ([`encode_forum`] / [`decode_forum`] —
//! the exact bytes a corpus snapshot stores), wrapped in a checksummed
//! frame the daemon can validate *before* parsing:
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────────────
//!      0     1  magic 0xDE   (never the first byte of a JSON line)
//!      1     1  magic 0x48   ('H')
//!      2     1  command tag  (1 = attack, 2 = add_auxiliary_users)
//!      3     1  reserved, must be 0
//!      4     4  payload length n  (u32, little-endian)
//!      8     n  payload           (snapshot-codec primitives)
//!  8 + n     8  FNV-1a-64 of the payload  (u64, little-endian)
//! ```
//!
//! The declared length lives entirely inside the fixed 8-byte header,
//! so the daemon enforces its request byte cap **from the header** — a
//! frame claiming 2 GiB is rejected the moment those 8 bytes arrive,
//! before any payload is buffered, let alone allocated.
//!
//! ## Encoding detection
//!
//! Requests on one connection are detected per message by their first
//! byte: [`FRAME_MAGIC`]`[0]` (`0xDE`) starts a binary frame, anything
//! else starts a newline-terminated JSON line. `0xDE` is not valid
//! UTF-8 as a leading byte, so no JSON request line can ever begin with
//! it — a connection may freely interleave binary bulk frames with JSON
//! control lines, while JSON bytes *inside* a frame's declared extent
//! fail its checksum and close the connection with a typed error.
//!
//! ## Attack payload schema
//!
//! ```text
//! u32  option flags      (bit 0 top_k, 1 n_landmarks, 2 threads,
//!                         3 seed, 4 approx margin)
//! u64  × popcount(flags) option values, in bit order (the approx
//!                        margin travels as its f64 bit pattern)
//! u32  n_users │ u32 n_threads │ u32 n_posts │ posts…   (encode_forum)
//! ```
//!
//! `add_auxiliary_users` payloads are the bare [`encode_forum`] bytes.
//! A binary `seed` carries the full `u64` range — the JSON path's
//! 2^53 exact-representation ceiling is a property of `f64` numbers,
//! not of the protocol.
//!
//! Responses are always newline-JSON regardless of request encoding, so
//! replies stay byte-comparable across encodings (`tests/
//! service_parity.rs` holds them bit-identical to each other and to the
//! serial oracle).

use dehealth_corpus::snapshot::{
    decode_forum, encode_forum, fnv1a, SectionBuf, SectionReader, SectionTag,
};
use dehealth_corpus::Forum;

use crate::protocol::AttackOptions;

/// The two-byte frame magic. The first byte doubles as the per-message
/// encoding discriminator (see the [module docs](self)).
pub const FRAME_MAGIC: [u8; 2] = [0xDE, 0x48];

/// Fixed frame header: magic (2) + tag (1) + reserved (1) + length (4).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Fixed frame trailer: the payload's FNV-1a-64 checksum.
pub const FRAME_TRAILER_BYTES: usize = 8;

/// Section tag labelling wire-frame payloads in codec error messages.
const WIRE_TAG: SectionTag = SectionTag(*b"WIRE");

/// The command a binary frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTag {
    /// An `attack` request (options + anonymized forum).
    Attack,
    /// An `add_auxiliary_users` request (auxiliary forum chunk).
    AddAuxiliaryUsers,
}

impl FrameTag {
    /// The tag's wire byte.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            FrameTag::Attack => 1,
            FrameTag::AddAuxiliaryUsers => 2,
        }
    }

    /// Decode a wire byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameTag::Attack),
            2 => Some(FrameTag::AddAuxiliaryUsers),
            _ => None,
        }
    }

    /// The command label the tag maps to (metric families, logs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FrameTag::Attack => "attack",
            FrameTag::AddAuxiliaryUsers => "add_auxiliary_users",
        }
    }
}

/// A malformed or oversized frame, detected at the framing layer —
/// answered with a typed `"ok":false` line and a closed connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The second magic byte is wrong (the first one selected binary
    /// framing, so this is a corrupt or foreign stream).
    BadMagic(u8),
    /// The command tag byte maps to no known bulk command.
    BadTag(u8),
    /// The reserved header byte is nonzero.
    BadReserved(u8),
    /// The declared frame would exceed the request byte cap.
    Oversize {
        /// Total frame bytes the header declares (header + payload +
        /// trailer).
        declared: u64,
        /// The daemon's `max_request_bytes` cap.
        cap: usize,
    },
    /// The payload's FNV-1a checksum does not match the trailer.
    ChecksumMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad frame magic byte 0x{b:02x}"),
            FrameError::BadTag(b) => write!(f, "unknown frame command tag {b}"),
            FrameError::BadReserved(b) => write!(f, "nonzero reserved frame byte {b}"),
            FrameError::Oversize { declared, cap } => {
                write!(f, "frame declares {declared} bytes, exceeding the {cap} byte limit")
            }
            FrameError::ChecksumMismatch => write!(f, "frame payload checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The `daemon_error_kind_total` label this error is counted under.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FrameError::BadMagic(_) | FrameError::BadTag(_) | FrameError::BadReserved(_) => {
                "bad_frame"
            }
            FrameError::Oversize { .. } => "oversize_request",
            FrameError::ChecksumMismatch => "frame_checksum",
        }
    }
}

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The command the frame carries.
    pub tag: FrameTag,
    /// Payload bytes between header and checksum trailer.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Total frame size: header + payload + trailer.
    #[must_use]
    pub fn frame_len(&self) -> usize {
        FRAME_HEADER_BYTES + self.payload_len as usize + FRAME_TRAILER_BYTES
    }
}

/// Validate the fixed 8-byte header: magic, tag, reserved byte, and the
/// declared total length against `cap` — **before** any payload is
/// buffered.
///
/// # Errors
/// The typed [`FrameError`] the daemon answers with.
pub fn parse_header(
    header: &[u8; FRAME_HEADER_BYTES],
    cap: usize,
) -> Result<FrameHeader, FrameError> {
    if header[0] != FRAME_MAGIC[0] || header[1] != FRAME_MAGIC[1] {
        let bad = if header[0] == FRAME_MAGIC[0] { header[1] } else { header[0] };
        return Err(FrameError::BadMagic(bad));
    }
    let tag = FrameTag::from_byte(header[2]).ok_or(FrameError::BadTag(header[2]))?;
    if header[3] != 0 {
        return Err(FrameError::BadReserved(header[3]));
    }
    let payload_len = u32::from_le_bytes(header[4..8].try_into().expect("4 header bytes"));
    let declared = payload_len as u64 + (FRAME_HEADER_BYTES + FRAME_TRAILER_BYTES) as u64;
    if declared > cap as u64 {
        return Err(FrameError::Oversize { declared, cap });
    }
    Ok(FrameHeader { tag, payload_len })
}

/// Verify a complete frame's checksum trailer against its payload.
///
/// # Errors
/// [`FrameError::ChecksumMismatch`].
pub fn verify_checksum(
    payload: &[u8],
    trailer: &[u8; FRAME_TRAILER_BYTES],
) -> Result<(), FrameError> {
    if fnv1a(payload) == u64::from_le_bytes(*trailer) {
        Ok(())
    } else {
        Err(FrameError::ChecksumMismatch)
    }
}

/// Wrap a payload in the frame header and checksum trailer.
///
/// # Panics
/// Panics if the payload exceeds `u32::MAX` bytes (far beyond any
/// daemon's request cap).
#[must_use]
pub fn encode_frame(tag: FrameTag, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload overflows u32");
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len() + FRAME_TRAILER_BYTES);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(tag.to_byte());
    out.push(0);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

const FLAG_TOP_K: u32 = 1 << 0;
const FLAG_N_LANDMARKS: u32 = 1 << 1;
const FLAG_THREADS: u32 = 1 << 2;
const FLAG_SEED: u32 = 1 << 3;
const FLAG_APPROX: u32 = 1 << 4;
const KNOWN_FLAGS: u32 = FLAG_TOP_K | FLAG_N_LANDMARKS | FLAG_THREADS | FLAG_SEED | FLAG_APPROX;

/// Encode a complete binary `attack` request frame.
#[must_use]
pub fn encode_attack_frame(anonymized: &Forum, options: &AttackOptions) -> Vec<u8> {
    let mut buf = SectionBuf::new();
    let mut flags = 0u32;
    for (set, flag) in [
        (options.top_k.is_some(), FLAG_TOP_K),
        (options.n_landmarks.is_some(), FLAG_N_LANDMARKS),
        (options.threads.is_some(), FLAG_THREADS),
        (options.seed.is_some(), FLAG_SEED),
        (options.approx_margin.is_some(), FLAG_APPROX),
    ] {
        if set {
            flags |= flag;
        }
    }
    buf.put_u32(flags);
    if let Some(k) = options.top_k {
        buf.put_len(k);
    }
    if let Some(h) = options.n_landmarks {
        buf.put_len(h);
    }
    if let Some(t) = options.threads {
        buf.put_len(t);
    }
    if let Some(s) = options.seed {
        buf.put_u64(s);
    }
    if let Some(margin) = options.approx_margin {
        buf.put_u64(margin.to_bits());
    }
    encode_forum(anonymized, &mut buf);
    encode_frame(FrameTag::Attack, &buf.into_bytes())
}

/// Encode a complete binary `add_auxiliary_users` request frame.
#[must_use]
pub fn encode_add_users_frame(chunk: &Forum) -> Vec<u8> {
    let mut buf = SectionBuf::new();
    encode_forum(chunk, &mut buf);
    encode_frame(FrameTag::AddAuxiliaryUsers, &buf.into_bytes())
}

/// Peek an attack payload's `threads` override from its fixed-layout
/// prefix without decoding the forum — the daemon's batch-key probe
/// (the binary analogue of scanning a JSON line for `"threads"`). The
/// flags word and the option values it announces sit at known offsets,
/// so this reads at most three words. Returns `None` when the override
/// is absent or the payload is too short to carry what it claims (the
/// full decode then reports the error).
#[must_use]
pub fn peek_attack_threads(payload: &[u8]) -> Option<usize> {
    let flags = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?);
    if flags & FLAG_THREADS == 0 {
        return None;
    }
    let skip = (flags & (FLAG_TOP_K | FLAG_N_LANDMARKS)).count_ones() as usize;
    let at = 4 + 8 * skip;
    let threads = u64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
    usize::try_from(threads).ok()
}

/// A decoded binary `attack` payload.
#[derive(Debug, Clone)]
pub struct AttackPayload {
    /// Per-request overrides (unset fields keep the daemon's defaults).
    pub options: AttackOptions,
    /// The anonymized forum to de-anonymize.
    pub forum: Forum,
}

fn take_usize(r: &mut SectionReader<'_>, what: &'static str) -> Result<usize, String> {
    let v = r.take_u64().map_err(|e| e.to_string())?;
    usize::try_from(v).map_err(|_| format!("{what} overflows usize"))
}

/// Decode the payload of a checksum-verified binary `attack` frame.
///
/// # Errors
/// A human-readable description of the malformed field (answered as an
/// `invalid_argument` protocol error, mirroring the JSON path).
pub fn decode_attack_payload(payload: &[u8]) -> Result<AttackPayload, String> {
    let mut r = SectionReader::standalone(payload, WIRE_TAG);
    let flags = r.take_u32().map_err(|e| e.to_string())?;
    if flags & !KNOWN_FLAGS != 0 {
        return Err(format!("unknown attack option flags 0x{:x}", flags & !KNOWN_FLAGS));
    }
    let mut options = AttackOptions::default();
    if flags & FLAG_TOP_K != 0 {
        options.top_k = Some(take_usize(&mut r, "top_k")?);
    }
    if flags & FLAG_N_LANDMARKS != 0 {
        options.n_landmarks = Some(take_usize(&mut r, "n_landmarks")?);
    }
    if flags & FLAG_THREADS != 0 {
        options.threads = Some(take_usize(&mut r, "threads")?);
    }
    if flags & FLAG_SEED != 0 {
        options.seed = Some(r.take_u64().map_err(|e| e.to_string())?);
    }
    if flags & FLAG_APPROX != 0 {
        let margin = f64::from_bits(r.take_u64().map_err(|e| e.to_string())?);
        if !margin.is_finite() || margin < 0.0 {
            return Err("margin must be a finite number >= 0".into());
        }
        options.approx_margin = Some(margin);
    }
    let forum = decode_forum(&mut r).map_err(|e| e.to_string())?;
    r.expect_end().map_err(|e| e.to_string())?;
    Ok(AttackPayload { options, forum })
}

/// Decode the payload of a checksum-verified binary
/// `add_auxiliary_users` frame.
///
/// # Errors
/// Like [`decode_attack_payload`].
pub fn decode_add_users_payload(payload: &[u8]) -> Result<Forum, String> {
    let mut r = SectionReader::standalone(payload, WIRE_TAG);
    let forum = decode_forum(&mut r).map_err(|e| e.to_string())?;
    r.expect_end().map_err(|e| e.to_string())?;
    Ok(forum)
}

/// Scan a JSON request line for the string value of a top-level key,
/// without building a parse tree — the front thread's classification
/// primitive (`"cmd"`) and batch-key probe (`"threads"`).
///
/// The scanner tracks object/array depth and string escapes, so a
/// matching key inside a nested object (`forum.n_threads`) or inside a
/// post's text can never false-positive. It returns the key's raw value
/// slice only for simple (escape-free) string and number values; on
/// anything else — or on text the scanner cannot follow — it returns
/// `None` and the caller falls back to a full parse. The scanner may
/// accept lines a strict parser rejects; the authoritative parse (and
/// its error reply) happens on a worker either way.
#[must_use]
pub fn scan_top_level(line: &[u8], key: &str) -> Option<String> {
    let n = line.len();
    let mut i = 0;
    while i < n && line[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= n || line[i] != b'{' {
        return None;
    }
    i += 1;
    let mut depth = 1usize;
    let mut expecting_key = true;
    while i < n {
        match line[i] {
            b'"' => {
                let start = i + 1;
                i += 1;
                let mut escaped = false;
                let mut end = None;
                while i < n {
                    let c = line[i];
                    if escaped {
                        escaped = false;
                    } else if c == b'\\' {
                        escaped = true;
                    } else if c == b'"' {
                        end = Some(i);
                        break;
                    }
                    i += 1;
                }
                let end = end?;
                i = end + 1;
                if depth == 1 && expecting_key && &line[start..end] == key.as_bytes() {
                    return scan_value(line, i);
                }
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                if depth == 1 {
                    return None;
                }
                depth -= 1;
                i += 1;
            }
            b':' => {
                if depth == 1 {
                    expecting_key = false;
                }
                i += 1;
            }
            b',' => {
                if depth == 1 {
                    expecting_key = true;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Read the simple value following a matched key: skip the colon, then
/// return an escape-free string's contents or a bare number/keyword
/// token verbatim.
fn scan_value(line: &[u8], mut i: usize) -> Option<String> {
    let n = line.len();
    while i < n && line[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= n || line[i] != b':' {
        return None;
    }
    i += 1;
    while i < n && line[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= n {
        return None;
    }
    if line[i] == b'"' {
        let start = i + 1;
        i += 1;
        while i < n {
            match line[i] {
                // No known command or simple value contains escapes; a
                // full parse will classify this line authoritatively.
                b'\\' => return None,
                b'"' => return String::from_utf8(line[start..i].to_vec()).ok(),
                _ => i += 1,
            }
        }
        return None;
    }
    let start = i;
    while i < n && !matches!(line[i], b',' | b'}' | b']') && !line[i].is_ascii_whitespace() {
        i += 1;
    }
    if i == start {
        return None;
    }
    String::from_utf8(line[start..i].to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::ForumConfig;

    #[test]
    fn attack_frame_roundtrips_with_full_u64_seed() {
        let forum = Forum::generate(&ForumConfig::tiny(), 3);
        let options = AttackOptions {
            top_k: Some(7),
            n_landmarks: None,
            threads: Some(2),
            seed: Some(u64::MAX - 5), // far beyond the JSON wire's 2^53
            approx_margin: Some(0.125),
        };
        let frame = encode_attack_frame(&forum, &options);
        let header = parse_header(frame[..8].try_into().unwrap(), usize::MAX).unwrap();
        assert_eq!(header.tag, FrameTag::Attack);
        assert_eq!(header.frame_len(), frame.len());
        let payload = &frame[8..8 + header.payload_len as usize];
        verify_checksum(payload, frame[frame.len() - 8..].try_into().unwrap()).unwrap();
        let decoded = decode_attack_payload(payload).unwrap();
        assert_eq!(decoded.options, options);
        assert_eq!(decoded.forum.n_users, forum.n_users);
        assert_eq!(decoded.forum.posts.len(), forum.posts.len());
        for (a, b) in decoded.forum.posts.iter().zip(&forum.posts) {
            assert_eq!((a.author, a.thread, &a.text), (b.author, b.thread, &b.text));
        }
    }

    #[test]
    fn add_users_frame_roundtrips() {
        let forum = Forum::generate(&ForumConfig::tiny(), 9);
        let frame = encode_add_users_frame(&forum);
        let header = parse_header(frame[..8].try_into().unwrap(), usize::MAX).unwrap();
        assert_eq!(header.tag, FrameTag::AddAuxiliaryUsers);
        let payload = &frame[8..8 + header.payload_len as usize];
        let decoded = decode_add_users_payload(payload).unwrap();
        assert_eq!(decoded.posts.len(), forum.posts.len());
    }

    #[test]
    fn header_rejects_oversize_before_any_payload_exists() {
        // A frame claiming 2 GiB, validated from the 8 header bytes alone.
        let mut header = [0u8; 8];
        header[..2].copy_from_slice(&FRAME_MAGIC);
        header[2] = FrameTag::Attack.to_byte();
        header[4..8].copy_from_slice(&(2u32 << 30).to_le_bytes());
        let err = parse_header(&header, 64 * 1024 * 1024).unwrap_err();
        assert!(matches!(err, FrameError::Oversize { declared, .. } if declared > 2 << 30));
        assert_eq!(err.kind(), "oversize_request");
    }

    #[test]
    fn header_rejects_bad_magic_tag_and_reserved() {
        let good = |tag: u8, reserved: u8| {
            let mut h = [0u8; 8];
            h[..2].copy_from_slice(&FRAME_MAGIC);
            h[2] = tag;
            h[3] = reserved;
            h
        };
        let mut h = good(1, 0);
        h[1] = b'X';
        assert!(matches!(parse_header(&h, 1024), Err(FrameError::BadMagic(b'X'))));
        assert!(matches!(parse_header(&good(9, 0), 1024), Err(FrameError::BadTag(9))));
        assert!(matches!(parse_header(&good(2, 7), 1024), Err(FrameError::BadReserved(7))));
        assert_eq!(FrameError::BadTag(9).kind(), "bad_frame");
        assert_eq!(FrameError::ChecksumMismatch.kind(), "frame_checksum");
    }

    #[test]
    fn checksum_catches_a_flipped_payload_byte() {
        let forum = Forum::generate(&ForumConfig::tiny(), 1);
        let mut frame = encode_add_users_frame(&forum);
        let len = frame.len();
        frame[10] ^= 0x40;
        let payload = &frame[8..len - 8];
        let err = verify_checksum(payload, frame[len - 8..].try_into().unwrap()).unwrap_err();
        assert_eq!(err, FrameError::ChecksumMismatch);
    }

    #[test]
    fn scanner_finds_top_level_keys_only() {
        let line = br#"{"cmd":"attack","threads":3,"forum":{"n_threads":9,"cmd":"nested","posts":[[0,0,"say \"threads\": 5"]]}}"#;
        assert_eq!(scan_top_level(line, "cmd").as_deref(), Some("attack"));
        assert_eq!(scan_top_level(line, "threads").as_deref(), Some("3"));
        assert_eq!(scan_top_level(line, "n_threads"), None);
        assert_eq!(scan_top_level(line, "posts"), None, "array values are not simple");
        assert_eq!(scan_top_level(br#"  {"cmd" : "stats"} "#, "cmd").as_deref(), Some("stats"));
        assert_eq!(scan_top_level(br#"{"cmd":"shut\"down"}"#, "cmd"), None, "escapes defer");
        assert_eq!(scan_top_level(br#"not json"#, "cmd"), None);
        assert_eq!(scan_top_level(br#"{"a":{"cmd":"attack"}}"#, "cmd"), None);
        assert_eq!(
            scan_top_level(br#"{"later":1,"cmd":"metrics"}"#, "cmd").as_deref(),
            Some("metrics")
        );
    }

    #[test]
    fn first_magic_byte_cannot_start_a_json_line() {
        // 0xDE is a UTF-8 continuation-range lead for 2-byte sequences
        // (0xC2..=0xDF) — but JSON text must start with a structural
        // character or whitespace, all ASCII. The discriminator is safe.
        assert!(!FRAME_MAGIC[0].is_ascii());
    }
}
