//! A minimal JSON value, parser and emitter — the wire substrate of the
//! daemon protocol.
//!
//! The workspace has no crates.io access, so (in the pattern of the
//! `crates/rand` / `crates/criterion` shims) the protocol layer carries
//! its own JSON implementation: a recursive-descent parser with a depth
//! guard, and an emitter whose number formatting round-trips `f64`s
//! exactly (integers print without a fractional part; everything else
//! uses Rust's shortest-round-trip `{:?}` float formatting).
//!
//! ```
//! use dehealth_service::json::Json;
//!
//! let v = Json::parse(r#"{"cmd": "stats", "ids": [1, 2.5, null]}"#).unwrap();
//! assert_eq!(v.get("cmd").and_then(Json::as_str), Some("stats"));
//! assert_eq!(Json::parse(&v.emit()).unwrap(), v);
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays/objects); deeper
/// input is rejected instead of risking a stack overflow.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve key order (the emitter is
/// deterministic); numbers are `f64`, which covers every integer the
/// protocol carries (user ids and counters stay far below 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: a static description and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor: a number from a `usize`.
    ///
    /// # Panics
    /// Panics above 2^53 (counters and ids never get near it), where
    /// `f64` would silently round.
    #[must_use]
    pub fn int(v: usize) -> Json {
        assert!(v <= (1usize << 53), "integer too large for exact f64");
        Json::Num(v as f64)
    }

    /// Parse one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    /// A [`JsonError`] describing the first malformed byte.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: s.as_bytes(), at: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(JsonError { message: "trailing characters", at: p.at });
        }
        Ok(v)
    }

    /// Serialize to a single-line JSON string.
    #[must_use]
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => emit_number(*v, out),
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` on non-objects and absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as an exact non-negative integer (`None` for
    /// non-numbers, negatives, and values with a fractional part).
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= (1u64 << 53) as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Integers emit without a fractional part; everything else uses `{:?}`,
/// Rust's shortest representation that round-trips the exact `f64`.
/// Non-finite values (which JSON cannot express) emit as `null`.
fn emit_number(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 && (v != 0.0 || v.is_sign_positive()) {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:?}");
    }
}

fn emit_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { message, at: self.at }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(lit) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal(b"null", Json::Null),
            Some(b't') => self.eat_literal(b"true", Json::Bool(true)),
            Some(b'f') => self.eat_literal(b"false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.at;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.at += 1;
            }
            p.at > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number bytes are ASCII");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .expect("input was a valid &str");
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.bytes.len() < self.at + 4 {
            return Err(self.err("truncated unicode escape"));
        }
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bytes[self.at];
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.at += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-7", "2.5", "\"hi\"", "[]", "{}"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.emit(), text, "{text}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"cmd":"attack","posts":[[0,1,"hello \"world\"\n"],[2,0,"x"]],"k":10}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("attack"));
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(10));
        let posts = v.get("posts").and_then(Json::as_array).unwrap();
        assert_eq!(posts[0].as_array().unwrap()[2].as_str(), Some("hello \"world\"\n"));
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1.234_567_890_123_456_7e300, -0.0] {
            let text = Json::Num(v).emit();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::int(42).emit(), "42");
        assert_eq!(Json::Num(-3.0).emit(), "-3");
        assert_eq!(Json::Num(2.5).emit(), "2.5");
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""\u00e9\ud83c\udf0d""#).unwrap();
        assert_eq!(v.as_str(), Some("é🌍"));
        // Raw UTF-8 passes through and re-parses.
        let s = Json::Str("é🌍 ± µ".into());
        assert_eq!(Json::parse(&s.emit()).unwrap(), s);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for text in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "[1,]",
            "{\"a\":1,}",
            "01x",
            "1.",
            "1e",
            "nulL",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "[1] trailing",
            "\u{1}",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
        // Depth guard.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Json::parse(r#"{"a": 1.5, "b": -2, "c": [true]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_usize), None);
        assert_eq!(v.get("b").and_then(Json::as_usize), None);
        assert_eq!(v.get("c").unwrap().as_array().unwrap()[0].as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn nonfinite_numbers_emit_null() {
        assert_eq!(Json::Num(f64::NAN).emit(), "null");
        assert_eq!(Json::Num(f64::INFINITY).emit(), "null");
    }
}
