#![warn(missing_docs)]
//! # dehealth-service
//!
//! The serving layer that turns the De-Health attack from a batch process
//! into a long-lived daemon. Three pieces:
//!
//! - [`corpus::PreparedCorpus`] — the standing auxiliary corpus: forum,
//!   per-post stylometric features, UDA graph, attribute index, and the
//!   refined-DA feature arena, persisted to a versioned, checksummed
//!   binary **snapshot** ([`dehealth_corpus::snapshot`] container). A
//!   snapshot reload skips feature extraction entirely — restart cost
//!   drops from a full corpus build to a file read plus cheap merges.
//! - [`daemon::Daemon`] — a TCP server speaking newline-delimited JSON
//!   ([`protocol`]; the [`json`] module is the in-tree parser/emitter,
//!   in the pattern of the `crates/rand` / `crates/criterion` shims)
//!   plus length-prefixed, checksummed **binary frames** ([`frame`])
//!   for the bulk commands, auto-detected per message by first byte.
//!   One readiness-driven front thread (`dehealth-netpoll`: epoll /
//!   `poll(2)` / tick fallback) multiplexes every connection and does
//!   *framing only* — request parsing, execution, and reply
//!   serialization are all billed to a bounded worker pool (per-request
//!   `daemon_parse/queue/engine/emit_seconds` stage timers prove it);
//!   attack requests against the same corpus generation landing inside
//!   the coalescing window
//!   ([`DaemonLimits::batch_window`](daemon::DaemonLimits)) are fused
//!   into one sharded engine pass
//!   ([`Engine::run_prepared_batch`](dehealth_engine::Engine::run_prepared_batch))
//!   and demuxed back per request, bit-identical to solo execution.
//!   Requests: `load_snapshot`, `add_auxiliary_users` (incremental
//!   streaming ingest), `attack` (batch of anonymized users → Top-K
//!   candidates + refined mappings + per-stage report), `stats`, and
//!   `shutdown`. Concurrent sessions share the immutable corpus via
//!   `Arc` (copy-on-write updates).
//! - [`client::ServiceClient`] — a blocking client for the protocol,
//!   with optional connect/read timeouts ([`client::ClientTimeouts`])
//!   surfacing as typed [`client::ServiceError::Timeout`] errors.
//! - [`metrics`] — exposition of the daemon's `dehealth-telemetry`
//!   registry: the `metrics` command's JSON encoding
//!   ([`registry_to_json`]) and the optional Prometheus scrape endpoint
//!   ([`MetricsServer`], `repro serve --metrics-addr`).
//!
//! ## Parity guarantee
//!
//! A wire `attack` against a snapshot-loaded corpus produces mappings and
//! candidate sets **bit-identical** to the serial `DeHealth::run` on the
//! freshly built corpus, at any thread count — the same differential
//! contract every other fast path in this workspace carries
//! (`tests/service_parity.rs` asserts it at 1 and 8 threads).
//!
//! ## Quickstart
//!
//! ```
//! use dehealth_corpus::{Forum, ForumConfig};
//! use dehealth_corpus::split::{closed_world_split, SplitConfig};
//! use dehealth_service::corpus::PreparedCorpus;
//! use dehealth_service::daemon::{default_config, Daemon};
//! use dehealth_service::client::ServiceClient;
//! use dehealth_service::protocol::AttackOptions;
//!
//! // Prepare a corpus and serve it on an ephemeral local port.
//! let forum = Forum::generate(&ForumConfig::tiny(), 42);
//! let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
//! let corpus = PreparedCorpus::build(split.auxiliary, Default::default());
//! let daemon = Daemon::bind_with_corpus("127.0.0.1:0", default_config(), Some(corpus)).unwrap();
//!
//! // Attack over the wire.
//! let mut client = ServiceClient::connect(daemon.addr()).unwrap();
//! let options = AttackOptions { top_k: Some(5), n_landmarks: Some(10), ..Default::default() };
//! let reply = client.attack(&split.anonymized, &options).unwrap();
//! assert_eq!(reply.mapping.len(), split.anonymized.n_users);
//!
//! client.shutdown().unwrap();
//! daemon.join();
//! ```

pub mod client;
pub mod corpus;
pub mod daemon;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod protocol;

pub use client::{AttackReply, ClientTimeouts, ServiceClient, ServiceError, WireEncoding};
pub use corpus::{LoadMode, MemoryStats, PreparedCorpus};
pub use daemon::{Daemon, DaemonLimits, DaemonStats};
pub use json::Json;
pub use metrics::{registry_to_json, MetricsServer};
pub use protocol::AttackOptions;
