//! Registry exposition for the serving layer: the JSON encoding used by
//! the `metrics` wire command and the minimal HTTP responder behind
//! `repro serve --metrics-addr` (Prometheus text format).
//!
//! The JSON encoding lives here rather than in `dehealth-telemetry`
//! because it targets the in-tree [`Json`] type — the telemetry crate
//! stays a zero-dependency leaf.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dehealth_telemetry::{MetricValue, Registry};

use crate::json::Json;

/// Encode a whole registry as a JSON array, one object per metric in
/// deterministic (name, labels) order:
///
/// ```text
/// {"name":…,"labels":{…},"type":"counter","value":3}
/// {"name":…,"labels":{…},"type":"gauge","value":-2}
/// {"name":…,"labels":{…},"type":"histogram","count":5,"sum_seconds":…,
///  "p50":…,"p90":…,"p99":…,
///  "p50_overflow":…,"p90_overflow":…,"p99_overflow":…,
///  "buckets":[[le_seconds,cumulative],…]}
/// ```
///
/// Histogram `buckets` list the finite ladder only; the `+Inf` bucket is
/// implied by `count` (the in-tree JSON emitter writes non-finite
/// numbers as `null`, so `+Inf` cannot travel as a bound). Each `pNN` is
/// paired with a `pNN_overflow` boolean: when true, the quantile's rank
/// lives in the overflow bucket, so `pNN` is the ladder ceiling — a
/// floor on the true value, not an estimate. Counter and gauge values
/// are emitted as JSON numbers (`f64`), like every other counter on
/// this wire.
#[must_use]
pub fn registry_to_json(registry: &Registry) -> Json {
    let metrics = registry
        .snapshot()
        .into_iter()
        .map(|m| {
            let labels = m.labels.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect();
            let mut fields = vec![
                ("name".into(), Json::Str(m.name)),
                ("labels".into(), Json::Obj(labels)),
                ("type".into(), Json::Str(m.value.kind().into())),
            ];
            match m.value {
                MetricValue::Counter(v) => fields.push(("value".into(), Json::Num(v as f64))),
                MetricValue::Gauge(v) => fields.push(("value".into(), Json::Num(v as f64))),
                MetricValue::Histogram(h) => {
                    let buckets = h
                        .cumulative()
                        .map(|(le, n)| Json::Arr(vec![Json::Num(le), Json::Num(n as f64)]))
                        .collect();
                    let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
                    fields.extend([
                        ("count".into(), Json::Num(h.count() as f64)),
                        ("sum_seconds".into(), Json::Num(h.sum_seconds())),
                        ("p50".into(), Json::Num(p50.seconds)),
                        ("p90".into(), Json::Num(p90.seconds)),
                        ("p99".into(), Json::Num(p99.seconds)),
                        ("p50_overflow".into(), Json::Bool(p50.overflow)),
                        ("p90_overflow".into(), Json::Bool(p90.overflow)),
                        ("p99_overflow".into(), Json::Bool(p99.overflow)),
                        ("buckets".into(), Json::Arr(buckets)),
                    ]);
                }
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Arr(metrics)
}

/// How often the scrape listener wakes up to poll its shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A minimal read-only HTTP responder serving a registry in the
/// Prometheus text exposition format — the `--metrics-addr` scrape
/// endpoint.
///
/// Every request (whatever its path) is answered with the full registry
/// and the connection is closed; there is no keep-alive, no routing, and
/// nothing writable. Dropping the server stops the listener thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (port 0 for ephemeral) and start answering scrapes
    /// from `registry`.
    ///
    /// # Errors
    /// Propagates socket errors (bind/listen).
    pub fn bind<A: ToSocketAddrs>(addr: A, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutting_down);
        let thread = std::thread::spawn(move || scrape_loop(&listener, &registry, &flag));
        Ok(Self { addr, shutting_down, thread: Some(thread) })
    }

    /// The bound address (with the actual port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn scrape_loop(listener: &TcpListener, registry: &Registry, shutting_down: &AtomicBool) {
    while !shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => serve_scrape(stream, registry),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Answer one scrape: drain the request head (bounded, best-effort),
/// write the full exposition, close. A stalling or misbehaving peer
/// costs at most the read timeout, never a thread.
fn serve_scrape(mut stream: std::net::TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut head = [0u8; 4096];
    let mut read = 0;
    while read < head.len() {
        match stream.read(&mut head[read..]) {
            Ok(0) => break,
            Ok(n) => {
                read += n;
                if head[..read].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.prometheus_text();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn registry_to_json_golden_format() {
        let registry = Registry::new();
        registry.counter_with("daemon_requests_total", &[("cmd", "attack")]).add(3);
        registry.gauge("daemon_connections_live").set(2);
        let hist = registry.histogram("attack_seconds");
        hist.record_nanos(1_500_000_000); // 1.5s → the ≤ 2s bucket
        let json = registry_to_json(&registry);
        let arr = json.as_array().unwrap();
        assert_eq!(arr.len(), 3);

        // Deterministic order: attack_seconds, daemon_connections_live,
        // daemon_requests_total.
        let hist_obj = &arr[0];
        assert_eq!(hist_obj.get("name").and_then(Json::as_str), Some("attack_seconds"));
        assert_eq!(hist_obj.get("type").and_then(Json::as_str), Some("histogram"));
        assert_eq!(hist_obj.get("count").and_then(Json::as_usize), Some(1));
        assert_eq!(hist_obj.get("sum_seconds").and_then(Json::as_f64), Some(1.5));
        let p50 = hist_obj.get("p50").and_then(Json::as_f64).unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50 {p50} inside the 1s–2s bucket");
        assert_eq!(
            hist_obj.get("p50_overflow").and_then(Json::as_bool),
            Some(false),
            "in-ladder quantile must not flag overflow"
        );
        assert_eq!(hist_obj.get("p99_overflow").and_then(Json::as_bool), Some(false));
        let buckets = hist_obj.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 28, "finite ladder only; +Inf implied by count");
        let last = buckets.last().and_then(Json::as_array).unwrap();
        assert_eq!(last[0].as_f64(), Some(1000.0));
        assert_eq!(last[1].as_usize(), Some(1));

        assert_eq!(arr[1].get("type").and_then(Json::as_str), Some("gauge"));
        assert_eq!(arr[1].get("value").and_then(Json::as_f64), Some(2.0));
        let counter = &arr[2];
        assert_eq!(counter.get("value").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            counter.get("labels").and_then(|l| l.get("cmd")).and_then(Json::as_str),
            Some("attack")
        );

        // The whole thing survives an emit/parse round trip.
        let reparsed = Json::parse(&json.emit()).unwrap();
        assert_eq!(reparsed.as_array().unwrap().len(), 3);
    }

    #[test]
    fn metrics_server_answers_a_scrape() {
        let registry = Arc::new(Registry::new());
        registry.counter("scrapes_total").add(7);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();

        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.starts_with("HTTP/1.1 200 OK"), "status: {status}");
        let mut response = status.clone();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            response.push_str(&line);
            line.clear();
        }
        assert!(response.contains("# TYPE scrapes_total counter"), "response: {response}");
        assert!(response.contains("scrapes_total 7"), "response: {response}");

        server.shutdown();
    }
}
