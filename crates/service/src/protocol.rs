//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every request is a single-line JSON object with a `"cmd"` field; every
//! response is a single-line JSON object with an `"ok"` boolean (plus
//! either result fields or an `"error"` string). One connection can issue
//! any number of requests back to back. ARCHITECTURE.md documents each
//! command's full schema; the shapes in short:
//!
//! ```text
//! → {"cmd":"load_snapshot","path":"corpus.snap"}
//! ← {"ok":true,"users":600,"posts":3195,"seconds":0.041}
//!
//! → {"cmd":"add_auxiliary_users","forum":{"n_users":2,"n_threads":1,
//!        "posts":[[0,0,"text…"],[1,0,"text…"]]}}
//! ← {"ok":true,"users":602,"posts":3197}
//!
//! → {"cmd":"attack","forum":{…anonymized batch…},
//!        "top_k":10,"n_landmarks":30,"threads":8,"seed":0}
//! ← {"ok":true,"mapping":[17,null,…],"candidates":[[17,4,…],…],
//!        "report":{"n_threads":8,"stages":[{"stage":"topk",…},…]}}
//!
//! → {"cmd":"stats"}
//! ← {"ok":true,"corpus_users":602,…,"requests":7,"attacks":3,…}
//!
//! → {"cmd":"metrics"}
//! ← {"ok":true,"metrics":[{"name":"daemon_requests_total","labels":{},
//!        "type":"counter","value":7},…]}
//!
//! → {"cmd":"shutdown"}
//! ← {"ok":true}
//! ```
//!
//! Forums travel as `{"n_users","n_threads","posts":[[author,thread,
//! text],…]}` — the same triple [`Forum::from_posts`] consumes, so the
//! decoded forum is exactly the forum an in-process caller would have
//! passed, and wire attacks stay bit-identical to in-process ones
//! (`tests/service_parity.rs`).

use dehealth_corpus::{Forum, Post};
use dehealth_engine::EngineReport;

use crate::json::Json;

/// Encode a forum for the wire.
#[must_use]
pub fn forum_to_json(forum: &Forum) -> Json {
    let posts = forum
        .posts
        .iter()
        .map(|p| {
            Json::Arr(vec![Json::int(p.author), Json::int(p.thread), Json::Str(p.text.clone())])
        })
        .collect();
    Json::Obj(vec![
        ("n_users".into(), Json::int(forum.n_users)),
        ("n_threads".into(), Json::int(forum.n_threads)),
        ("posts".into(), Json::Arr(posts)),
    ])
}

/// Decode a forum sent by [`forum_to_json`], validating author/thread
/// ranges (via [`Forum::from_posts`]'s own checks, pre-empted here so the
/// failure is an error string instead of a panic).
///
/// # Errors
/// A human-readable description of the malformed field.
pub fn forum_from_json(v: &Json) -> Result<Forum, String> {
    let n_users = v.get("n_users").and_then(Json::as_usize).ok_or("missing or invalid n_users")?;
    let n_threads =
        v.get("n_threads").and_then(Json::as_usize).ok_or("missing or invalid n_threads")?;
    let posts_json = v.get("posts").and_then(Json::as_array).ok_or("missing posts array")?;
    let mut posts = Vec::with_capacity(posts_json.len());
    for (i, p) in posts_json.iter().enumerate() {
        let triple = p.as_array().filter(|a| a.len() == 3);
        let Some([author, thread, text]) = triple.and_then(|a| <&[Json; 3]>::try_from(a).ok())
        else {
            return Err(format!("post {i} is not an [author, thread, text] triple"));
        };
        let author = author.as_usize().ok_or_else(|| format!("post {i}: invalid author"))?;
        let thread = thread.as_usize().ok_or_else(|| format!("post {i}: invalid thread"))?;
        let text = text.as_str().ok_or_else(|| format!("post {i}: invalid text"))?;
        if author >= n_users || thread >= n_threads {
            return Err(format!("post {i} references out-of-range user or thread"));
        }
        posts.push(Post { author, thread, text: text.to_string() });
    }
    Ok(Forum::from_posts(n_users, n_threads, posts))
}

/// Encode an engine report (thread count plus per-stage counters).
#[must_use]
pub fn report_to_json(report: &EngineReport) -> Json {
    let stages = report
        .stages
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("stage".into(), Json::Str(s.stage.to_string())),
                ("unit".into(), Json::Str(s.unit.to_string())),
                ("seconds".into(), Json::Num(s.seconds)),
                ("items".into(), Json::Num(s.items as f64)),
                ("skipped".into(), Json::Num(s.skipped as f64)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("n_threads".into(), Json::int(report.n_threads)),
        ("block_size".into(), Json::int(report.block_size)),
        ("stages".into(), Json::Arr(stages)),
    ];
    // Only approximate runs carry prescreen counters; exact responses
    // stay byte-identical to what pre-approx daemons emitted.
    let p = report.prescreen;
    if !p.is_empty() {
        fields.push((
            "prescreen".into(),
            Json::Obj(vec![
                ("admitted".into(), Json::Num(p.admitted as f64)),
                ("skipped".into(), Json::Num(p.skipped as f64)),
                ("rescored".into(), Json::Num(p.rescored as f64)),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// A successful response: `{"ok": true, …fields}`.
#[must_use]
pub fn ok_response(fields: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("ok".into(), Json::Bool(true))];
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// A failure response: `{"ok": false, "error": message}`.
#[must_use]
pub fn error_response(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(message.to_string())),
    ])
}

/// Per-request overrides of the daemon's default attack parameters.
/// `None` fields keep the daemon's configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AttackOptions {
    /// Candidate-set size K.
    pub top_k: Option<usize>,
    /// Landmark count ħ.
    pub n_landmarks: Option<usize>,
    /// Worker threads for this attack (0 = machine parallelism).
    pub threads: Option<usize>,
    /// RNG seed (decoy sampling, SMO pair selection). Must be `<= 2^53`:
    /// the wire carries numbers as `f64`, and a silently rounded seed
    /// would break the request's seed-faithful parity with an in-process
    /// run — so larger seeds are rejected loudly at encode time.
    pub seed: Option<u64>,
    /// Opt into the approximate fast tier with this confidence margin
    /// (encodes as `"mode":"approx"` plus `"margin"`). `None` keeps the
    /// daemon's default bit-exact execution.
    pub approx_margin: Option<f64>,
}

impl AttackOptions {
    /// Encode the set fields into request pairs.
    ///
    /// # Panics
    /// Panics if `seed` exceeds 2^53 (not exactly representable on the
    /// JSON wire — see [`AttackOptions::seed`]).
    #[must_use]
    pub fn to_fields(&self) -> Vec<(String, Json)> {
        let mut fields = Vec::new();
        if let Some(k) = self.top_k {
            fields.push(("top_k".into(), Json::int(k)));
        }
        if let Some(h) = self.n_landmarks {
            fields.push(("n_landmarks".into(), Json::int(h)));
        }
        if let Some(t) = self.threads {
            fields.push(("threads".into(), Json::int(t)));
        }
        if let Some(s) = self.seed {
            assert!(s <= 1u64 << 53, "seed {s} is not exactly representable on the JSON wire");
            fields.push(("seed".into(), Json::Num(s as f64)));
        }
        if let Some(margin) = self.approx_margin {
            fields.push(("mode".into(), Json::Str("approx".into())));
            fields.push(("margin".into(), Json::Num(margin)));
        }
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dehealth_corpus::ForumConfig;

    #[test]
    fn forum_roundtrips_over_json() {
        let forum = Forum::generate(&ForumConfig::tiny(), 8);
        let v = forum_to_json(&forum);
        let back = forum_from_json(&v).unwrap();
        assert_eq!(back.n_users, forum.n_users);
        assert_eq!(back.n_threads, forum.n_threads);
        assert_eq!(back.posts.len(), forum.posts.len());
        for (a, b) in back.posts.iter().zip(&forum.posts) {
            assert_eq!((a.author, a.thread, &a.text), (b.author, b.thread, &b.text));
        }
        // And through an actual emit/parse cycle.
        let reparsed = Json::parse(&v.emit()).unwrap();
        let back2 = forum_from_json(&reparsed).unwrap();
        assert_eq!(back2.posts.len(), forum.posts.len());
    }

    #[test]
    fn malformed_forums_are_rejected() {
        let cases = [
            r#"{}"#,
            r#"{"n_users":1,"n_threads":1}"#,
            r#"{"n_users":1,"n_threads":1,"posts":[[0,0]]}"#,
            r#"{"n_users":1,"n_threads":1,"posts":[[5,0,"x"]]}"#,
            r#"{"n_users":1,"n_threads":1,"posts":[[0,9,"x"]]}"#,
            r#"{"n_users":1,"n_threads":1,"posts":[[0,0,42]]}"#,
            r#"{"n_users":-1,"n_threads":1,"posts":[]}"#,
        ];
        for text in cases {
            let v = Json::parse(text).unwrap();
            assert!(forum_from_json(&v).is_err(), "{text}");
        }
    }

    #[test]
    fn attack_options_encode_only_set_fields() {
        assert!(AttackOptions::default().to_fields().is_empty());
        let opts = AttackOptions { top_k: Some(5), threads: Some(2), ..AttackOptions::default() };
        let fields = opts.to_fields();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "top_k");
        assert_eq!(fields[1].0, "threads");
    }

    #[test]
    fn response_helpers() {
        let ok = ok_response(vec![("users".into(), Json::int(3))]);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("users").and_then(Json::as_usize), Some(3));
        let err = error_response("boom");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("boom"));
    }
}
