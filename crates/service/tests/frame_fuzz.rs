//! Property/fuzz loop for the binary wire-frame codec: seeded random
//! byte-level corruption over valid `attack` and `add_auxiliary_users`
//! frames must always produce either a typed [`FrameError`] / decode
//! error or a valid parse — never a panic, a hang, or a silent misparse
//! of a corrupted payload.
//!
//! The harness drives the exact sequence the daemon's front thread runs
//! on every binary message: [`parse_header`] (which also enforces the
//! byte cap from the fixed header), [`verify_checksum`], then the
//! tag-appropriate payload decoder. Everything in that chain is bounded
//! by the declared length, so completing the loop at all is the no-hang
//! half of the property.

use dehealth_corpus::{Forum, ForumConfig};
use dehealth_service::frame::{
    decode_add_users_payload, decode_attack_payload, encode_add_users_frame, encode_attack_frame,
    parse_header, verify_checksum, FrameTag, FRAME_HEADER_BYTES, FRAME_TRAILER_BYTES,
};
use dehealth_service::AttackOptions;

const CAP: usize = 8 * 1024 * 1024;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one full front-thread pass over `bytes` produced.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    /// Fewer bytes than the header (or the declared frame) — the real
    /// daemon would keep reading or see EOF; nothing to validate.
    Incomplete,
    /// A typed framing error (header or checksum layer).
    Frame(&'static str),
    /// The frame was well-formed but the payload decoder rejected it.
    Decode,
    /// Parsed to a valid command payload.
    Valid(FrameTag),
}

/// Run the daemon's exact header → checksum → decode sequence. Any panic
/// escapes and fails the test; any return is an acceptable outcome.
fn drive(bytes: &[u8]) -> Outcome {
    let Some(header) = bytes.get(..FRAME_HEADER_BYTES) else {
        return Outcome::Incomplete;
    };
    let header: &[u8; FRAME_HEADER_BYTES] = header.try_into().unwrap();
    let header = match parse_header(header, CAP) {
        Ok(h) => h,
        Err(e) => return Outcome::Frame(e.kind()),
    };
    if bytes.len() < header.frame_len() {
        return Outcome::Incomplete;
    }
    let payload = &bytes[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + header.payload_len as usize];
    let trailer_at = FRAME_HEADER_BYTES + header.payload_len as usize;
    let trailer: &[u8; FRAME_TRAILER_BYTES] =
        bytes[trailer_at..trailer_at + FRAME_TRAILER_BYTES].try_into().unwrap();
    if let Err(e) = verify_checksum(payload, trailer) {
        return Outcome::Frame(e.kind());
    }
    let decoded = match header.tag {
        FrameTag::Attack => decode_attack_payload(payload).map(|_| ()),
        FrameTag::AddAuxiliaryUsers => decode_add_users_payload(payload).map(|_| ()),
    };
    match decoded {
        Ok(()) => Outcome::Valid(header.tag),
        Err(_) => Outcome::Decode,
    }
}

/// One seeded mutation of a valid frame. Every strategy changes the byte
/// string (XOR masks are forced nonzero; truncation/extension change the
/// length), so a mutated frame is never byte-identical to the original.
fn mutate(frame: &[u8], state: &mut u64) -> Vec<u8> {
    let mut out = frame.to_vec();
    match splitmix64(state) % 6 {
        // Flip one random byte.
        0 => {
            let at = (splitmix64(state) % out.len() as u64) as usize;
            out[at] ^= (splitmix64(state) % 255 + 1) as u8;
        }
        // Flip up to 8 random bytes.
        1 => {
            for _ in 0..=(splitmix64(state) % 8) {
                let at = (splitmix64(state) % out.len() as u64) as usize;
                out[at] ^= (splitmix64(state) % 255 + 1) as u8;
            }
        }
        // Truncate to a random shorter prefix.
        2 => {
            out.truncate((splitmix64(state) % frame.len() as u64) as usize);
        }
        // Append random trailing garbage.
        3 => {
            for _ in 0..=(splitmix64(state) % 32) {
                out.push((splitmix64(state) % 256) as u8);
            }
        }
        // Tamper with the declared payload length.
        4 => {
            let declared = (splitmix64(state) % (2 * frame.len() as u64 + 64)) as u32;
            out[4..8].copy_from_slice(&declared.to_le_bytes());
        }
        // Replace everything with random bytes of a random length,
        // keeping the magic half the time so the header survives into
        // the deeper layers.
        _ => {
            let len = (splitmix64(state) % 512 + 1) as usize;
            out = (0..len).map(|_| (splitmix64(state) % 256) as u8).collect();
            if splitmix64(state) % 2 == 0 && out.len() >= 2 {
                out[0] = 0xDE;
                out[1] = 0x48;
            }
        }
    }
    out
}

fn valid_frames() -> Vec<(Vec<u8>, FrameTag)> {
    let forum = Forum::generate(&ForumConfig::tiny(), 11);
    let options = AttackOptions {
        top_k: Some(5),
        n_landmarks: Some(12),
        threads: Some(2),
        seed: Some(0xdead_beef_cafe_f00d),
        approx_margin: Some(0.25),
    };
    vec![
        (encode_attack_frame(&forum, &options), FrameTag::Attack),
        (encode_attack_frame(&forum, &AttackOptions::default()), FrameTag::Attack),
        (encode_add_users_frame(&forum), FrameTag::AddAuxiliaryUsers),
    ]
}

#[test]
fn seeded_mutations_never_panic_and_always_classify() {
    let mut state = 0x5eed_f422_0b57_ac1eu64;
    let frames = valid_frames();
    let mut tally = [0usize; 4];
    for round in 0..200 {
        for (frame, tag) in &frames {
            // The unmutated frame must parse — the baseline the mutants
            // corrupt.
            assert_eq!(drive(frame), Outcome::Valid(*tag), "pristine frame failed (round {round})");
            let mutant = mutate(frame, &mut state);
            assert_ne!(&mutant, frame, "mutation was a no-op (round {round})");
            match drive(&mutant) {
                Outcome::Incomplete => tally[0] += 1,
                Outcome::Frame(kind) => {
                    assert!(
                        matches!(kind, "bad_frame" | "oversize_request" | "frame_checksum"),
                        "unknown frame-error kind {kind}"
                    );
                    tally[1] += 1;
                }
                Outcome::Decode => tally[2] += 1,
                Outcome::Valid(t) => {
                    // A mutant that still parses must have confined its
                    // damage to bytes outside the validated frame extent
                    // (trailing garbage past frame_len) — same tag, same
                    // declared extent, bit-identical bytes within it.
                    let len = frame.len();
                    assert_eq!(t, *tag, "mutant flipped the command tag yet parsed");
                    assert!(
                        mutant.len() >= len && mutant[..len] == frame[..len],
                        "mutant altered validated bytes yet parsed cleanly (round {round})"
                    );
                    tally[3] += 1;
                }
            }
        }
    }
    // 600 mutants must actually exercise the interesting layers, not
    // degenerate into one bucket.
    assert!(tally[1] > 50, "framing layer underexercised: {tally:?}");
    assert!(tally[0] + tally[1] + tally[2] + tally[3] == 600, "lost mutants: {tally:?}");
}

#[test]
fn payload_and_trailer_corruption_is_always_a_checksum_error() {
    let mut state = 7u64;
    for (frame, _) in valid_frames() {
        let payload_len = frame.len() - FRAME_HEADER_BYTES - FRAME_TRAILER_BYTES;
        for _ in 0..50 {
            // Any single-byte corruption past the header — payload or
            // trailer — must surface as the typed checksum error: the
            // declared extent still arrives, parses, and fails closed.
            let mut mutant = frame.clone();
            let at = FRAME_HEADER_BYTES
                + (splitmix64(&mut state) % (payload_len + FRAME_TRAILER_BYTES) as u64) as usize;
            mutant[at] ^= (splitmix64(&mut state) % 255 + 1) as u8;
            assert_eq!(drive(&mutant), Outcome::Frame("frame_checksum"), "flip at byte {at}");
        }
    }
}

#[test]
fn every_truncation_of_a_valid_frame_is_incomplete_or_typed() {
    // Exhaustive, not sampled: every prefix of a valid frame. Prefixes
    // shorter than the declared extent are incomplete reads; no prefix
    // may parse as valid (the trailer can't both arrive and match).
    for (frame, _) in valid_frames() {
        for cut in 0..frame.len() {
            match drive(&frame[..cut]) {
                Outcome::Valid(_) => panic!("truncation to {cut} bytes parsed as valid"),
                Outcome::Incomplete | Outcome::Frame(_) | Outcome::Decode => {}
            }
        }
    }
}
