//! Per-post feature extraction.
//!
//! `extract` maps one post to a dense vector of `M` non-negative values in
//! the [`crate::registry`] layout. All frequency features are *relative*
//! (divided by the relevant token/character count) so posts of different
//! lengths are comparable; the raw length features themselves are kept in
//! natural units. A value of `0` means "the post does not exhibit this
//! feature", which is exactly the attribute semantics of Section II-B.

use dehealth_text::lexicon::{function_word_index, misspelling_index};
use dehealth_text::pos::{pos_bigrams, tag_tokens};
use dehealth_text::stats::{frequency_table, legomena, yules_k};
use dehealth_text::tokenize::{paragraphs, tokenize, TokenKind, WordShape};

use crate::registry::{idx, M, MAX_WORD_LEN, N_POS, PUNCT_CHARS, SPECIAL_CHARS};
use crate::vector::FeatureVector;

fn shape_slot(shape: WordShape) -> usize {
    match shape {
        WordShape::AllUpper => 0,
        WordShape::AllLower => 1,
        WordShape::Capitalized => 2,
        WordShape::Camel => 3,
        WordShape::Other => 4,
    }
}

/// Extract the Table-I feature vector of one post.
///
/// Never panics; empty or pathological inputs yield an all-zero vector.
///
/// ```
/// use dehealth_stylometry::{extract, feature_name};
/// let v = extract("I recieve the results tomorrow!");
/// // The misspelling feature fires...
/// let idx = (0..dehealth_stylometry::M)
///     .find(|&i| feature_name(i) == "misspell_recieve")
///     .unwrap();
/// assert!(v.get(idx) > 0.0);
/// // ...and the function word "the" is counted.
/// assert!(v.iter_nonzero().count() > 10);
/// ```
#[must_use]
pub fn extract(text: &str) -> FeatureVector {
    let mut v = vec![0.0f64; M];
    let tokens = tokenize(text);
    let words: Vec<&str> =
        tokens.iter().filter(|t| t.kind == TokenKind::Word).map(|t| t.text).collect();
    let n_chars = text.chars().filter(|c| !c.is_whitespace()).count();
    let n_words = words.len();

    // --- Length (raw units) ---
    v[idx::LENGTH] = n_chars as f64;
    v[idx::LENGTH + 1] = paragraphs(text).len() as f64;
    if n_words > 0 {
        let word_chars: usize = words.iter().map(|w| w.chars().count()).sum();
        v[idx::LENGTH + 2] = word_chars as f64 / n_words as f64;
    }

    // --- Word length histogram (relative to word count) ---
    if n_words > 0 {
        for w in &words {
            let len = w.chars().count().min(MAX_WORD_LEN);
            if len >= 1 {
                v[idx::WORD_LEN + len - 1] += 1.0;
            }
        }
        for k in 0..MAX_WORD_LEN {
            v[idx::WORD_LEN + k] /= n_words as f64;
        }
    }

    // --- Vocabulary richness ---
    if n_words > 0 {
        let freqs = frequency_table(words.iter().copied());
        v[idx::VOCAB] = yules_k(&freqs);
        let l = legomena(&freqs);
        v[idx::VOCAB + 1] = l.hapax as f64 / n_words as f64;
        v[idx::VOCAB + 2] = l.dis as f64 / n_words as f64;
        v[idx::VOCAB + 3] = l.tris as f64 / n_words as f64;
        v[idx::VOCAB + 4] = l.tetrakis as f64 / n_words as f64;
    }

    // --- Character-class frequencies (relative to non-space chars) ---
    if n_chars > 0 {
        let mut n_letters = 0usize;
        let mut n_upper = 0usize;
        for c in text.chars() {
            if c.is_alphabetic() {
                n_letters += 1;
                if c.is_uppercase() {
                    n_upper += 1;
                }
            }
            if c.is_ascii_alphabetic() {
                let slot = (c.to_ascii_lowercase() as u8 - b'a') as usize;
                v[idx::LETTER + slot] += 1.0;
            } else if c.is_ascii_digit() {
                v[idx::DIGIT + (c as u8 - b'0') as usize] += 1.0;
            } else if let Some(slot) = SPECIAL_CHARS.iter().position(|&s| s == c) {
                v[idx::SPECIAL + slot] += 1.0;
            }
            if let Some(slot) = PUNCT_CHARS.iter().position(|&s| s == c) {
                v[idx::PUNCT + slot] += 1.0;
            }
        }
        for k in 0..26 {
            v[idx::LETTER + k] /= n_chars as f64;
        }
        for k in 0..10 {
            v[idx::DIGIT + k] /= n_chars as f64;
        }
        for k in 0..21 {
            v[idx::SPECIAL + k] /= n_chars as f64;
        }
        for k in 0..10 {
            v[idx::PUNCT + k] /= n_chars as f64;
        }
        if n_letters > 0 {
            v[idx::UPPER_PCT] = n_upper as f64 / n_letters as f64;
        }
    }

    // --- Word shape: 5 class frequencies + 16 bigrams over main classes ---
    if n_words > 0 {
        let shapes: Vec<WordShape> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Word)
            .map(dehealth_text::tokenize::Token::shape)
            .collect();
        for &s in &shapes {
            v[idx::SHAPE + shape_slot(s)] += 1.0;
        }
        for k in 0..5 {
            v[idx::SHAPE + k] /= n_words as f64;
        }
        if shapes.len() >= 2 {
            let n_bi = shapes.len() - 1;
            for w in shapes.windows(2) {
                let (a, b) = (shape_slot(w[0]), shape_slot(w[1]));
                if a < 4 && b < 4 {
                    v[idx::SHAPE + 5 + a * 4 + b] += 1.0;
                }
            }
            for k in 0..16 {
                v[idx::SHAPE + 5 + k] /= n_bi as f64;
            }
        }
    }

    // --- Function words and misspellings (relative to word count) ---
    if n_words > 0 {
        for w in &words {
            if let Some(fi) = function_word_index(w) {
                v[idx::FUNC + fi] += 1.0;
            }
            if let Some(mi) = misspelling_index(w) {
                v[idx::MISSPELL + mi] += 1.0;
            }
        }
        for k in 0..337 {
            v[idx::FUNC + k] /= n_words as f64;
        }
        for k in 0..248 {
            v[idx::MISSPELL + k] /= n_words as f64;
        }
    }

    // --- POS tags and bigrams (relative to tag / bigram counts) ---
    if !tokens.is_empty() {
        let tags = tag_tokens(&tokens);
        for &t in &tags {
            v[idx::POS + t.index()] += 1.0;
        }
        for k in 0..N_POS {
            v[idx::POS + k] /= tags.len() as f64;
        }
        let bigrams = pos_bigrams(&tags);
        if !bigrams.is_empty() {
            for &(a, b) in &bigrams {
                v[idx::POS_BIGRAM + a.index() * N_POS + b.index()] += 1.0;
            }
            for k in 0..N_POS * N_POS {
                v[idx::POS_BIGRAM + k] /= bigrams.len() as f64;
            }
        }
    }

    FeatureVector::from_dense(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::feature_name;

    fn value(text: &str, name: &str) -> f64 {
        let v = extract(text);
        let i = (0..M)
            .find(|&i| feature_name(i) == name)
            .unwrap_or_else(|| panic!("no feature named {name}"));
        v.get(i)
    }

    #[test]
    fn empty_post_is_all_zero() {
        let v = extract("");
        assert!(v.iter_nonzero().next().is_none());
    }

    #[test]
    fn length_features() {
        assert_eq!(value("ab cd", "n_chars"), 4.0);
        assert_eq!(value("one\n\ntwo", "n_paragraphs"), 2.0);
        assert!((value("ab cdef", "avg_chars_per_word") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn word_length_histogram_sums_to_one() {
        let v = extract("a bb ccc dddd");
        let sum: f64 = (0..MAX_WORD_LEN).map(|k| v.get(idx::WORD_LEN + k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((v.get(idx::WORD_LEN) - 0.25).abs() < 1e-12); // one 1-char word of 4
    }

    #[test]
    fn letter_frequency_case_folded() {
        // "Aa" -> 2 of 2 chars are 'a'.
        assert!((value("Aa", "letter_a") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn digit_frequency() {
        assert!((value("a 1 2 2", "digit_2") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uppercase_percentage() {
        assert!((value("AB cd", "uppercase_pct") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn special_and_punct_counts() {
        assert!(value("a $ b", "special_$") > 0.0);
        assert!(value("hello, world", "punct_,") > 0.0);
        assert_eq!(value("hello world", "punct_,"), 0.0);
    }

    #[test]
    fn function_word_frequency() {
        // "the" twice of 4 words.
        assert!((value("the cat the dog", "func_the") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn misspelling_detected() {
        assert!(value("i recieve mail", "misspell_recieve") > 0.0);
        assert_eq!(value("i receive mail", "misspell_recieve"), 0.0);
    }

    #[test]
    fn pos_tags_sum_to_one() {
        let v = extract("The doctor prescribed antibiotics.");
        let sum: f64 = (0..N_POS).map(|k| v.get(idx::POS + k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pos_bigrams_sum_to_one() {
        let v = extract("The doctor helped me");
        let sum: f64 = (0..N_POS * N_POS).map(|k| v.get(idx::POS_BIGRAM + k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn word_shape_distribution() {
        let v = extract("ALT alt Alt");
        assert!((v.get(idx::SHAPE) - 1.0 / 3.0).abs() < 1e-12); // AllUpper
        assert!((v.get(idx::SHAPE + 1) - 1.0 / 3.0).abs() < 1e-12); // AllLower
        assert!((v.get(idx::SHAPE + 2) - 1.0 / 3.0).abs() < 1e-12); // Capitalized
    }

    #[test]
    fn all_values_non_negative_and_finite() {
        let v = extract("Weird ~~ input $$$ 123 don't STOP!!!");
        for (_, x) in v.iter_nonzero() {
            assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn single_token_post() {
        // No bigrams; must not divide by zero.
        let v = extract("hello");
        assert!((0..N_POS * N_POS).all(|k| v.get(idx::POS_BIGRAM + k) == 0.0));
    }
}
