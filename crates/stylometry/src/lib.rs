//! # dehealth-stylometry
//!
//! Table-I stylometric feature extraction for the De-Health reproduction.
//!
//! The paper extracts thirteen feature categories from every post —
//! lexical (length, word length, vocabulary richness, letter/digit
//! frequencies, uppercase percentage, special characters, word shape),
//! syntactic (punctuation, function words, POS tags, POS-tag bigrams), and
//! idiosyncratic (misspellings). This crate implements all of them over the
//! `dehealth-text` substrate:
//!
//! - [`registry`] — the stable feature index space (category layout,
//!   feature names, total dimension [`registry::M`]);
//! - [`features`] — the per-post extractor [`features::extract`];
//! - [`vector`] — [`vector::FeatureVector`] plus per-user aggregation and
//!   the binary *attribute* projection of Section II-B (`u ~ A_i` with
//!   weight `l_u(A_i)` = number of posts of `u` exhibiting feature `i`);
//! - [`ngrams`] — the optional *content feature* extension (hashed
//!   character trigrams and word unigrams) the paper defers to future
//!   work.

pub mod features;
pub mod ngrams;
pub mod registry;
pub mod vector;

pub use features::extract;
pub use ngrams::{extract_content, extract_extended, M_CONTENT};
pub use registry::{categories, feature_name, Category, M};
pub use vector::{FeatureVector, UserAttributes, UserProfile};
