//! Content features: hashed character n-grams and word unigrams.
//!
//! Table I deliberately excludes content features, but Section II-B notes
//! "it is possible to extract more stylometric features from the
//! WebMD/HB dataset, e.g., content features \[29\]" and leaves them as
//! future work. This module provides them as an *optional extension* of
//! the feature space: character trigrams and word unigrams, each hashed
//! into a fixed number of buckets (feature hashing keeps the dimension
//! bounded and index-stable without a corpus-wide vocabulary pass).

use crate::vector::FeatureVector;

/// Number of hash buckets for character trigrams.
pub const CHAR_NGRAM_BUCKETS: usize = 256;
/// Number of hash buckets for word unigrams.
pub const WORD_BUCKETS: usize = 256;
/// Total extension dimension.
pub const M_CONTENT: usize = CHAR_NGRAM_BUCKETS + WORD_BUCKETS;

/// FNV-1a, the classic feature-hashing choice: fast, stable, and good
/// enough dispersion for bucket counts this small.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Extract the content-feature extension of one post: a dense vector of
/// length [`M_CONTENT`] with relative frequencies (character trigrams
/// first, word buckets second). Case-folded; never panics.
#[must_use]
pub fn extract_content(text: &str) -> Vec<f64> {
    let mut v = vec![0.0f64; M_CONTENT];
    let lower = text.to_lowercase();
    let chars: Vec<char> = lower.chars().filter(|c| !c.is_whitespace()).collect();
    if chars.len() >= 3 {
        let n = chars.len() - 2;
        for w in chars.windows(3) {
            let mut buf = [0u8; 12];
            let mut len = 0;
            for &c in w {
                len += c.encode_utf8(&mut buf[len..]).len();
            }
            let slot = (fnv1a(buf[..len].iter().copied()) as usize) % CHAR_NGRAM_BUCKETS;
            v[slot] += 1.0;
        }
        for x in &mut v[..CHAR_NGRAM_BUCKETS] {
            *x /= n as f64;
        }
    }
    let words: Vec<&str> = lower.split_whitespace().collect();
    if !words.is_empty() {
        for w in &words {
            let slot = (fnv1a(w.bytes()) as usize) % WORD_BUCKETS;
            v[CHAR_NGRAM_BUCKETS + slot] += 1.0;
        }
        for x in &mut v[CHAR_NGRAM_BUCKETS..] {
            *x /= words.len() as f64;
        }
    }
    v
}

/// Extract the *extended* feature vector: the Table-I space followed by
/// the content extension, as one dense vector of length `M + M_CONTENT`.
#[must_use]
pub fn extract_extended(text: &str) -> Vec<f64> {
    let mut out = crate::features::extract(text).to_dense();
    out.extend(extract_content(text));
    out
}

/// Content-only cosine similarity between two posts (convenience for
/// content-feature experiments).
#[must_use]
pub fn content_cosine(a: &str, b: &str) -> f64 {
    let va = extract_content(a);
    let vb = extract_content(b);
    let dot: f64 = va.iter().zip(&vb).map(|(x, y)| x * y).sum();
    let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Sparse view of the content extension, with indices offset by `base`
/// (useful for appending to a [`FeatureVector`]-based pipeline).
#[must_use]
pub fn content_sparse(text: &str, base: usize) -> Vec<(usize, f64)> {
    extract_content(text)
        .into_iter()
        .enumerate()
        .filter(|&(_, x)| x != 0.0)
        .map(|(i, x)| (base + i, x))
        .collect()
}

/// `true` if `v` (a Table-I sparse vector) and a content extension would
/// not collide: the extension always lives above `crate::M`.
#[must_use]
pub fn extension_is_disjoint(v: &FeatureVector) -> bool {
    v.iter_nonzero().all(|(i, _)| i < crate::M)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        assert_eq!(extract_content("hello world").len(), M_CONTENT);
        assert_eq!(extract_extended("hello world").len(), crate::M + M_CONTENT);
    }

    #[test]
    fn empty_input_is_zero() {
        assert!(extract_content("").iter().all(|&x| x == 0.0));
        assert!(extract_content("  \n ").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn frequencies_are_normalized() {
        let v = extract_content("aaa bbb aaa");
        let char_sum: f64 = v[..CHAR_NGRAM_BUCKETS].iter().sum();
        let word_sum: f64 = v[CHAR_NGRAM_BUCKETS..].iter().sum();
        assert!((char_sum - 1.0).abs() < 1e-9, "char sum {char_sum}");
        assert!((word_sum - 1.0).abs() < 1e-9, "word sum {word_sum}");
    }

    #[test]
    fn deterministic_and_case_folded() {
        assert_eq!(extract_content("Migraine Pain"), extract_content("migraine pain"));
    }

    #[test]
    fn content_cosine_discriminates_topics() {
        let a1 = "my migraine headache pain is awful today";
        let a2 = "the migraine pain and headache came back";
        let b = "insulin dosage for diabetes and blood sugar checks";
        assert!(content_cosine(a1, a2) > content_cosine(a1, b));
        assert!((content_cosine(a1, a1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_view_offsets_indices() {
        let sparse = content_sparse("some words here", crate::M);
        assert!(!sparse.is_empty());
        assert!(sparse.iter().all(|&(i, x)| i >= crate::M && x > 0.0));
    }

    #[test]
    fn table_i_vectors_never_reach_extension_space() {
        let v = crate::features::extract("I realy have 40 mg of pain!!!");
        assert!(extension_is_disjoint(&v));
    }
}
