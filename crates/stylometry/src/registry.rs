//! The stable feature index space.
//!
//! Table I of the paper lists thirteen categories. Their sizes here:
//!
//! | Category            | Count | Notes |
//! |---------------------|-------|-------|
//! | Length              | 3     | characters, paragraphs, avg chars/word |
//! | Word length         | 20    | word-length 1..=20 relative frequency |
//! | Vocabulary richness | 5     | Yule's K + 4 legomena rates |
//! | Letter frequency    | 26    | `a`..`z`, case-folded |
//! | Digit frequency     | 10    | `0`..`9` |
//! | Uppercase %         | 1     | share of letters that are uppercase |
//! | Special characters  | 21    | fixed symbol set |
//! | Word shape          | 21    | 5 shape classes + 16 shape bigrams |
//! | Punctuation         | 10    | fixed punctuation set |
//! | Function words      | 337   | `dehealth-text` lexicon |
//! | POS tags            | 24    | `dehealth-text` tagset |
//! | POS tag bigrams     | 576   | 24 × 24 |
//! | Misspelled words    | 248   | `dehealth-text` lexicon |
//!
//! The paper reports `< 2300` POS tags / `< 2300²` bigrams because it
//! counts a larger tagger inventory; our tagset has 24 tags, so the POS
//! blocks shrink accordingly — the total is denoted `M` "since the number
//! of POS tags and POS tag bigrams could be variable" (Section II-B), which
//! this registry mirrors. The word-shape category in the paper counts 21
//! features for 4 shape descriptions; we realize it as the 5 shape-class
//! frequencies plus the 16 bigrams over the 4 main shape classes.

use dehealth_text::lexicon::{FUNCTION_WORDS, MISSPELLINGS};
use dehealth_text::pos::PosTag;

/// The 21-character special-character inventory (Table I row "Special
/// characters").
pub const SPECIAL_CHARS: [char; 21] = [
    '~', '@', '#', '$', '%', '^', '&', '*', '+', '=', '_', '/', '\\', '|', '<', '>', '[', ']', '{',
    '}', '`',
];

/// The 10-character punctuation inventory (Table I row "Punctuation
/// freq.").
pub const PUNCT_CHARS: [char; 10] = ['.', ',', ';', ':', '!', '?', '\'', '"', '(', ')'];

/// Maximum word length tracked by the word-length histogram.
pub const MAX_WORD_LEN: usize = 20;

/// Number of POS tags in the tagset.
pub const N_POS: usize = PosTag::ALL.len();

/// A contiguous block of the feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Category {
    /// Human-readable Table-I name.
    pub name: &'static str,
    /// First feature index of the block.
    pub start: usize,
    /// Number of features in the block.
    pub count: usize,
}

const fn build_categories() -> [Category; 13] {
    let mut start = 0;
    macro_rules! cat {
        ($name:literal, $count:expr) => {{
            let c = Category { name: $name, start, count: $count };
            start += $count;
            c
        }};
    }
    let out = [
        cat!("Length", 3),
        cat!("Word length", MAX_WORD_LEN),
        cat!("Vocabulary richness", 5),
        cat!("Letter freq.", 26),
        cat!("Digit freq.", 10),
        cat!("Uppercase letter percentage", 1),
        cat!("Special characters", 21),
        cat!("Word shape", 21),
        cat!("Punctuation freq.", 10),
        cat!("Function words", 337),
        cat!("POS tags", N_POS),
        cat!("POS tag bigrams", N_POS * N_POS),
        cat!("Misspelled words", 248),
    ];
    // `start` intentionally unused after the last block.
    let _ = start;
    out
}

/// The thirteen Table-I categories with their index ranges.
#[must_use]
pub const fn categories() -> [Category; 13] {
    build_categories()
}

/// Total feature dimension `M`.
pub const M: usize = {
    let cats = build_categories();
    cats[12].start + cats[12].count
};

/// Index helpers for each block, used by the extractor.
pub(crate) mod idx {
    use super::*;

    pub const LENGTH: usize = categories()[0].start;
    pub const WORD_LEN: usize = categories()[1].start;
    pub const VOCAB: usize = categories()[2].start;
    pub const LETTER: usize = categories()[3].start;
    pub const DIGIT: usize = categories()[4].start;
    pub const UPPER_PCT: usize = categories()[5].start;
    pub const SPECIAL: usize = categories()[6].start;
    pub const SHAPE: usize = categories()[7].start;
    pub const PUNCT: usize = categories()[8].start;
    pub const FUNC: usize = categories()[9].start;
    pub const POS: usize = categories()[10].start;
    pub const POS_BIGRAM: usize = categories()[11].start;
    pub const MISSPELL: usize = categories()[12].start;
}

/// Human-readable name of feature `i`.
///
/// # Panics
/// Panics if `i >= M`.
#[must_use]
pub fn feature_name(i: usize) -> String {
    assert!(i < M, "feature index {i} out of range (M={M})");
    use idx::*;
    if i < WORD_LEN {
        ["n_chars", "n_paragraphs", "avg_chars_per_word"][i - LENGTH].to_string()
    } else if i < VOCAB {
        format!("word_len_{}", i - WORD_LEN + 1)
    } else if i < LETTER {
        ["yules_k", "hapax_rate", "dis_rate", "tris_rate", "tetrakis_rate"][i - VOCAB].to_string()
    } else if i < DIGIT {
        format!("letter_{}", (b'a' + (i - LETTER) as u8) as char)
    } else if i < UPPER_PCT {
        format!("digit_{}", i - DIGIT)
    } else if i < SPECIAL {
        "uppercase_pct".to_string()
    } else if i < SHAPE {
        format!("special_{}", SPECIAL_CHARS[i - SPECIAL])
    } else if i < PUNCT {
        let k = i - SHAPE;
        if k < 5 {
            format!("shape_{}", ["upper", "lower", "capitalized", "camel", "other"][k])
        } else {
            let b = k - 5;
            let names = ["upper", "lower", "capitalized", "camel"];
            format!("shape_bigram_{}_{}", names[b / 4], names[b % 4])
        }
    } else if i < FUNC {
        format!("punct_{}", PUNCT_CHARS[i - PUNCT])
    } else if i < POS {
        format!("func_{}", FUNCTION_WORDS[i - FUNC])
    } else if i < POS_BIGRAM {
        format!("pos_{}", PosTag::ALL[i - POS].name())
    } else if i < MISSPELL {
        let k = i - POS_BIGRAM;
        format!("pos2_{}_{}", PosTag::ALL[k / N_POS].name(), PosTag::ALL[k % N_POS].name())
    } else {
        format!("misspell_{}", MISSPELLINGS[i - MISSPELL].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_layout_is_contiguous() {
        let cats = categories();
        let mut expected = 0;
        for c in &cats {
            assert_eq!(c.start, expected, "{} misaligned", c.name);
            expected += c.count;
        }
        assert_eq!(expected, M);
    }

    #[test]
    fn table_i_counts() {
        let cats = categories();
        let count = |name: &str| cats.iter().find(|c| c.name == name).unwrap().count;
        assert_eq!(count("Length"), 3);
        assert_eq!(count("Word length"), 20);
        assert_eq!(count("Vocabulary richness"), 5);
        assert_eq!(count("Letter freq."), 26);
        assert_eq!(count("Digit freq."), 10);
        assert_eq!(count("Uppercase letter percentage"), 1);
        assert_eq!(count("Special characters"), 21);
        assert_eq!(count("Word shape"), 21);
        assert_eq!(count("Punctuation freq."), 10);
        assert_eq!(count("Function words"), 337);
        assert_eq!(count("Misspelled words"), 248);
    }

    #[test]
    fn total_dimension() {
        assert_eq!(M, 3 + 20 + 5 + 26 + 10 + 1 + 21 + 21 + 10 + 337 + 24 + 576 + 248);
    }

    #[test]
    fn every_feature_has_a_name() {
        for i in 0..M {
            assert!(!feature_name(i).is_empty());
        }
    }

    #[test]
    fn sample_names() {
        assert_eq!(feature_name(0), "n_chars");
        assert_eq!(feature_name(idx::LETTER), "letter_a");
        assert_eq!(feature_name(idx::FUNC), format!("func_{}", FUNCTION_WORDS[0]));
        assert_eq!(feature_name(M - 1), format!("misspell_{}", MISSPELLINGS[247].0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn name_out_of_range_panics() {
        let _ = feature_name(M);
    }
}
