//! Sparse feature vectors and per-user aggregation.
//!
//! A post exhibits only a small fraction of the `M` features (most
//! function words, misspellings and POS bigrams never occur), so vectors
//! are stored sparsely as sorted `(index, value)` pairs.
//!
//! At the user level, Section II-B defines the *attributes*: user `u` has
//! attribute `A_i` iff some post of `u` has feature `F_i ≠ 0`, with weight
//! `l_u(A_i)` = number of posts of `u` having the feature. That projection
//! is [`UserAttributes`]; the continuous per-user mean vector used by the
//! refined-DA classifiers is [`UserProfile`].

use crate::registry::M;

/// A sparse non-negative feature vector in the [`crate::registry`] space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureVector {
    entries: Vec<(u32, f64)>,
}

impl FeatureVector {
    /// Build from a dense slice, keeping non-zero finite entries.
    ///
    /// # Panics
    /// Panics if `dense.len() != M`.
    #[must_use]
    pub fn from_dense(dense: Vec<f64>) -> Self {
        assert_eq!(dense.len(), M, "dense vector must have length M");
        let entries = dense
            .into_iter()
            .enumerate()
            .filter(|&(_, v)| v != 0.0 && v.is_finite())
            .map(|(i, v)| (i as u32, v))
            .collect();
        Self { entries }
    }

    /// Build directly from sorted non-zero `(index, value)` entries — the
    /// deserialization constructor (snapshot loading reconstructs vectors
    /// from persisted entry lists without densifying).
    ///
    /// # Errors
    /// Returns a description of the violated invariant when indices are
    /// not strictly increasing, an index is `>= M`, or a value is zero or
    /// non-finite — exactly the states [`FeatureVector::from_dense`] can
    /// never produce.
    pub fn try_from_sorted_entries(entries: Vec<(u32, f64)>) -> Result<Self, &'static str> {
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err("feature indices must be strictly increasing");
        }
        if entries.last().is_some_and(|&(i, _)| i as usize >= M) {
            return Err("feature index out of registry range");
        }
        if !entries.iter().all(|&(_, v)| v != 0.0 && v.is_finite()) {
            return Err("feature values must be non-zero and finite");
        }
        Ok(Self { entries })
    }

    /// Value of feature `i` (0 when absent).
    #[must_use]
    pub fn get(&self, i: usize) -> f64 {
        self.entries
            .binary_search_by_key(&(i as u32), |&(j, _)| j)
            .map(|k| self.entries[k].1)
            .unwrap_or(0.0)
    }

    /// Iterate non-zero `(index, value)` pairs in increasing index order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().map(|&(i, v)| (i as usize, v))
    }

    /// Number of non-zero features.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Materialize as a dense vector of length `M`.
    #[must_use]
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; M];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// Cosine similarity with another vector (0 if either is empty).
    #[must_use]
    pub fn cosine(&self, other: &FeatureVector) -> f64 {
        let mut dot = 0.0;
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.entries.len() && b < other.entries.len() {
            match self.entries[a].0.cmp(&other.entries[b].0) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.entries[a].1 * other.entries[b].1;
                    a += 1;
                    b += 1;
                }
            }
        }
        let na: f64 = self.entries.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        let nb: f64 = other.entries.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// Per-user continuous profile: the mean of the user's post vectors.
#[derive(Debug, Clone, Default)]
pub struct UserProfile {
    sum: Vec<(u32, f64)>,
    n_posts: usize,
}

impl UserProfile {
    /// Empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one post's feature vector.
    pub fn add_post(&mut self, v: &FeatureVector) {
        self.n_posts += 1;
        // Merge two sorted lists.
        let mut merged = Vec::with_capacity(self.sum.len() + v.entries.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.sum.len() || b < v.entries.len() {
            match (self.sum.get(a), v.entries.get(b)) {
                (Some(&(i, x)), Some(&(j, y))) => match i.cmp(&j) {
                    std::cmp::Ordering::Less => {
                        merged.push((i, x));
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((j, y));
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((i, x + y));
                        a += 1;
                        b += 1;
                    }
                },
                (Some(&(i, x)), None) => {
                    merged.push((i, x));
                    a += 1;
                }
                (None, Some(&(j, y))) => {
                    merged.push((j, y));
                    b += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.sum = merged;
    }

    /// Number of posts aggregated.
    #[must_use]
    pub fn n_posts(&self) -> usize {
        self.n_posts
    }

    /// Mean feature vector over the aggregated posts.
    #[must_use]
    pub fn mean(&self) -> FeatureVector {
        if self.n_posts == 0 {
            return FeatureVector::default();
        }
        let n = self.n_posts as f64;
        FeatureVector { entries: self.sum.iter().map(|&(i, v)| (i, v / n)).collect() }
    }
}

/// Per-user binary attributes with weights (Section II-B).
///
/// `weights[k] = (i, l_u(A_i))` where `l_u(A_i)` counts the user's posts
/// that exhibit feature `i`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UserAttributes {
    weights: Vec<(u32, u32)>,
}

impl UserAttributes {
    /// Empty attribute set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build directly from `(attribute index, l_u(A_i))` pairs — the
    /// posting-list constructor used by index builders and tests.
    ///
    /// # Panics
    /// Panics if the pairs are not strictly increasing by index or if any
    /// weight is zero (a zero-weight attribute is an absent attribute).
    #[must_use]
    pub fn from_weights(weights: Vec<(u32, u32)>) -> Self {
        assert!(
            weights.windows(2).all(|w| w[0].0 < w[1].0),
            "attribute indices must be strictly increasing"
        );
        assert!(weights.iter().all(|&(_, w)| w > 0), "attribute weights must be positive");
        Self { weights }
    }

    /// The raw sorted `(attribute index, l_u(A_i))` slice — the
    /// posting-friendly view used by inverted-index builders.
    #[must_use]
    pub fn as_weights(&self) -> &[(u32, u32)] {
        &self.weights
    }

    /// Sum of all attribute weights `Σ_i l_u(A_i)` (the `WA(u)` mass).
    /// Together with an intersection min-sum this reconstructs the
    /// weighted-Jaccard union exactly: `union = Σ_u + Σ_v - Σ min`.
    #[must_use]
    pub fn weight_sum(&self) -> u64 {
        self.weights.iter().map(|&(_, w)| u64::from(w)).sum()
    }

    /// Record one post: every non-zero feature contributes 1 to its
    /// attribute weight.
    pub fn add_post(&mut self, v: &FeatureVector) {
        let mut merged = Vec::with_capacity(self.weights.len() + v.entries.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.weights.len() || b < v.entries.len() {
            match (self.weights.get(a), v.entries.get(b)) {
                (Some(&(i, w)), Some(&(j, _))) => match i.cmp(&j) {
                    std::cmp::Ordering::Less => {
                        merged.push((i, w));
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((j, 1));
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((i, w.saturating_add(1)));
                        a += 1;
                        b += 1;
                    }
                },
                (Some(&(i, w)), None) => {
                    merged.push((i, w));
                    a += 1;
                }
                (None, Some(&(j, _))) => {
                    merged.push((j, 1));
                    b += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.weights = merged;
    }

    /// `true` if the user has attribute `i`.
    #[must_use]
    pub fn has(&self, i: usize) -> bool {
        self.weights.binary_search_by_key(&(i as u32), |&(j, _)| j).is_ok()
    }

    /// Number of attributes (`|A(u)|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the user has no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterate `(attribute index, l_u(A_i))` in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.weights.iter().map(|&(i, w)| (i as usize, w))
    }

    /// Jaccard similarity `|A(u) ∩ A(v)| / |A(u) ∪ A(v)|` (0 when both
    /// empty).
    #[must_use]
    pub fn jaccard(&self, other: &UserAttributes) -> f64 {
        let (mut inter, mut union) = (0usize, 0usize);
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.weights.len() || b < other.weights.len() {
            match (self.weights.get(a), other.weights.get(b)) {
                (Some(&(i, _)), Some(&(j, _))) => match i.cmp(&j) {
                    std::cmp::Ordering::Less => {
                        union += 1;
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        union += 1;
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        inter += 1;
                        union += 1;
                        a += 1;
                        b += 1;
                    }
                },
                (Some(_), None) => {
                    union += self.weights.len() - a;
                    break;
                }
                (None, Some(_)) => {
                    union += other.weights.len() - b;
                    break;
                }
                (None, None) => unreachable!(),
            }
        }
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Weighted Jaccard `|WA(u) ∩ WA(v)| / |WA(u) ∪ WA(v)|` with
    /// min-weights on the intersection and max-weights on the union
    /// (Section III-B's `s^a` second term). 0 when both empty.
    #[must_use]
    pub fn weighted_jaccard(&self, other: &UserAttributes) -> f64 {
        let (mut inter, mut union) = (0u64, 0u64);
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.weights.len() || b < other.weights.len() {
            match (self.weights.get(a), other.weights.get(b)) {
                (Some(&(i, x)), Some(&(j, y))) => match i.cmp(&j) {
                    std::cmp::Ordering::Less => {
                        union += u64::from(x);
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        union += u64::from(y);
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        inter += u64::from(x.min(y));
                        union += u64::from(x.max(y));
                        a += 1;
                        b += 1;
                    }
                },
                (Some(&(_, x)), None) => {
                    union += u64::from(x);
                    a += 1;
                }
                (None, Some(&(_, y))) => {
                    union += u64::from(y);
                    b += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;

    fn fv(pairs: &[(usize, f64)]) -> FeatureVector {
        let mut dense = vec![0.0; M];
        for &(i, v) in pairs {
            dense[i] = v;
        }
        FeatureVector::from_dense(dense)
    }

    #[test]
    fn sparse_roundtrip() {
        let v = fv(&[(3, 1.5), (100, 2.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(3), 1.5);
        assert_eq!(v.get(4), 0.0);
        let d = v.to_dense();
        assert_eq!(d.len(), M);
        assert_eq!(d[100], 2.0);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = extract("the doctor prescribed the medicine");
        assert!((v.cosine(&v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let a = fv(&[(1, 1.0)]);
        let b = fv(&[(2, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&FeatureVector::default()), 0.0);
    }

    #[test]
    fn profile_mean() {
        let mut p = UserProfile::new();
        p.add_post(&fv(&[(0, 2.0), (5, 4.0)]));
        p.add_post(&fv(&[(0, 4.0)]));
        let m = p.mean();
        assert_eq!(p.n_posts(), 2);
        assert_eq!(m.get(0), 3.0);
        assert_eq!(m.get(5), 2.0);
    }

    #[test]
    fn empty_profile_mean_is_empty() {
        assert_eq!(UserProfile::new().mean().nnz(), 0);
    }

    #[test]
    fn attribute_weights_count_posts() {
        let mut a = UserAttributes::new();
        a.add_post(&fv(&[(1, 0.5), (2, 0.1)]));
        a.add_post(&fv(&[(1, 9.0)]));
        assert!(a.has(1) && a.has(2) && !a.has(3));
        let w: Vec<(usize, u32)> = a.iter().collect();
        assert_eq!(w, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn jaccard_values() {
        let mut a = UserAttributes::new();
        a.add_post(&fv(&[(1, 1.0), (2, 1.0)]));
        let mut b = UserAttributes::new();
        b.add_post(&fv(&[(2, 1.0), (3, 1.0)]));
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
        assert_eq!(UserAttributes::new().jaccard(&UserAttributes::new()), 0.0);
    }

    #[test]
    fn weighted_jaccard_uses_min_max() {
        let mut a = UserAttributes::new();
        // attr 1 weight 2 (two posts), attr 2 weight 1.
        a.add_post(&fv(&[(1, 1.0), (2, 1.0)]));
        a.add_post(&fv(&[(1, 1.0)]));
        let mut b = UserAttributes::new();
        // attr 1 weight 1, attr 3 weight 1.
        b.add_post(&fv(&[(1, 1.0), (3, 1.0)]));
        // inter = min(2,1) = 1; union = max(2,1) + 1 + 1 = 4.
        assert!((a.weighted_jaccard(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_bounded_by_one() {
        let mut a = UserAttributes::new();
        a.add_post(&fv(&[(1, 1.0)]));
        assert!((a.weighted_jaccard(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_both_empty_is_zero() {
        let e = UserAttributes::new();
        assert_eq!(e.jaccard(&e), 0.0);
        assert_eq!(e.weighted_jaccard(&e), 0.0);
    }

    #[test]
    fn jaccard_one_empty_is_zero() {
        let mut a = UserAttributes::new();
        a.add_post(&fv(&[(1, 1.0), (7, 2.0)]));
        let e = UserAttributes::new();
        assert_eq!(a.jaccard(&e), 0.0);
        assert_eq!(e.jaccard(&a), 0.0);
        assert_eq!(a.weighted_jaccard(&e), 0.0);
        assert_eq!(e.weighted_jaccard(&a), 0.0);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        let a = UserAttributes::from_weights(vec![(1, 2), (3, 1)]);
        let b = UserAttributes::from_weights(vec![(2, 5), (4, 1)]);
        assert_eq!(a.jaccard(&b), 0.0);
        assert_eq!(a.weighted_jaccard(&b), 0.0);
    }

    #[test]
    fn jaccard_identical_is_one() {
        let a = UserAttributes::from_weights(vec![(0, 3), (9, 7), (100, 1)]);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
        assert!((a.weighted_jaccard(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_weights_do_not_overflow() {
        // A weight already at u32::MAX stays there when another post adds
        // the same attribute, and weighted Jaccard stays finite in [0, 1]
        // (sums run in u64, so even saturated weights cannot overflow).
        let mut a = UserAttributes::from_weights(vec![(1, u32::MAX)]);
        a.add_post(&fv(&[(1, 1.0)]));
        assert_eq!(a.as_weights(), &[(1, u32::MAX)]);
        let b = UserAttributes::from_weights(vec![(1, 1), (2, u32::MAX)]);
        let wj = a.weighted_jaccard(&b);
        assert!(wj.is_finite() && (0.0..=1.0).contains(&wj));
        assert_eq!(a.weight_sum(), u64::from(u32::MAX));
        assert_eq!(b.weight_sum(), u64::from(u32::MAX) + 1);
    }

    #[test]
    fn posting_view_matches_iter() {
        let mut a = UserAttributes::new();
        a.add_post(&fv(&[(2, 1.0), (5, 1.0)]));
        a.add_post(&fv(&[(5, 3.0)]));
        let from_iter: Vec<(u32, u32)> = a.iter().map(|(i, w)| (i as u32, w)).collect();
        assert_eq!(a.as_weights(), from_iter.as_slice());
        assert_eq!(a.weight_sum(), 3);
        assert_eq!(a, UserAttributes::from_weights(vec![(2, 1), (5, 2)]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_weights_rejects_unsorted() {
        let _ = UserAttributes::from_weights(vec![(3, 1), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_weights_rejects_zero_weight() {
        let _ = UserAttributes::from_weights(vec![(1, 0)]);
    }
}
