//! In-tree observability substrate for the De-Health reproduction.
//!
//! Like the workspace's `rand` and `criterion` shims, this crate exists
//! because the build environment has no crates.io access: it provides
//! the minimal metrics/logging surface the serving stack needs, with no
//! dependencies and no locks on any hot path.
//!
//! Three pieces:
//!
//! - [`metrics`] — atomic [`Counter`]/[`Gauge`], the log-bucketed
//!   latency [`Histogram`] (1-2-5 ladder, 1µs→1000s, exact count/sum,
//!   bucket-bounded quantile estimates with an explicit overflow
//!   marker — [`Quantile`]), and the RAII [`SpanTimer`]
//!   that records elapsed wall-clock on drop (panic path included).
//! - [`registry`] — the named-metric [`Registry`] with label support,
//!   deterministic snapshots, and Prometheus text exposition.
//! - [`mod@log`] — a leveled structured-logging facade: [`error!`] through
//!   [`trace!`] macros emitting single-line `key=value` records to a
//!   pluggable sink (default stderr), level from `DEHEALTH_LOG`.
//!
//! The JSON exposition of a registry lives in `dehealth-service`
//! (`registry_to_json`), next to the in-tree JSON encoder it targets —
//! this crate stays a leaf with zero dependencies.

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod registry;

pub use log::{Level, LogSink, Record};
pub use metrics::{
    bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, Quantile, SpanTimer,
    BUCKET_BOUNDS_NANOS, N_BUCKETS,
};
pub use registry::{MetricKey, MetricSnapshot, MetricValue, Registry};
