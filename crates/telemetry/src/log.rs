//! Leveled structured logging: single-line `key=value` records emitted
//! through a pluggable sink (default stderr).
//!
//! Line grammar:
//!
//! ```text
//! ts=<unix-seconds.millis> level=<error|warn|info|debug|trace> msg=<value> [key=<value>]...
//! ```
//!
//! where `<value>` is written bare when it contains no spaces, quotes,
//! `=`, backslashes, or control characters, and otherwise as a
//! double-quoted string with `\\`, `\"`, `\n`, `\r`, `\t` escapes.
//!
//! The active level comes from the `DEHEALTH_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`, `trace`; default `warn`),
//! read once on first use, and can be overridden programmatically with
//! [`set_max_level`]. Use the [`error!`](crate::error)..[`trace!`](crate::trace)
//! macros rather than building [`Record`]s by hand.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The operation failed.
    Error = 1,
    /// Something surprising that the system absorbed (default level).
    Warn = 2,
    /// Normal operational milestones.
    Info = 3,
    /// Per-request detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// The lowercase name used on the wire (`level=...`) and in
    /// `DEHEALTH_LOG`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a `DEHEALTH_LOG`-style name (case-insensitive); `None` for
    /// unknown strings.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Sentinel: level filter not yet resolved from the environment.
const LEVEL_UNSET: u8 = u8::MAX;
/// Everything disabled (`DEHEALTH_LOG=off`).
const LEVEL_OFF: u8 = 0;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn resolve_max_level() -> u8 {
    let resolved = match std::env::var("DEHEALTH_LOG") {
        Ok(v) if v.trim().eq_ignore_ascii_case("off") => LEVEL_OFF,
        Ok(v) => Level::parse(&v).unwrap_or(Level::Warn) as u8,
        Err(_) => Level::Warn as u8,
    };
    MAX_LEVEL.store(resolved, Ordering::Relaxed);
    resolved
}

/// Whether records at `level` are currently emitted. The macros check
/// this before paying any formatting cost.
#[must_use]
pub fn enabled(level: Level) -> bool {
    let mut max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == LEVEL_UNSET {
        max = resolve_max_level();
    }
    level as u8 <= max
}

/// Override the level filter (`None` disables all logging). Wins over
/// `DEHEALTH_LOG`.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
}

/// Destination for finished log lines (without trailing newline).
pub trait LogSink: Send + Sync {
    /// Deliver one complete record line.
    fn write_line(&self, line: &str);
}

static SINK: RwLock<Option<Arc<dyn LogSink>>> = RwLock::new(None);

/// Route records to `sink` instead of stderr.
pub fn set_sink(sink: Arc<dyn LogSink>) {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = Some(sink);
}

/// Restore the default stderr sink.
pub fn reset_sink() {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = None;
}

fn emit_line(line: &str) {
    let sink = SINK.read().unwrap_or_else(PoisonError::into_inner).clone();
    match sink {
        Some(sink) => sink.write_line(line),
        None => eprintln!("{line}"),
    }
}

/// One structured record under construction. Usually produced by the
/// level macros, which already perform the [`enabled`] check.
#[derive(Debug)]
pub struct Record {
    line: String,
}

impl Record {
    /// Start a record: timestamp, level, and message.
    #[must_use]
    pub fn new(level: Level, msg: &str) -> Self {
        let ts = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0.0, |d| d.as_secs_f64());
        let mut line = format!("ts={ts:.3} level={level} msg=");
        push_value(&mut line, msg);
        Self { line }
    }

    /// Append one `key=value` field.
    #[must_use]
    pub fn field<V: fmt::Display + ?Sized>(mut self, key: &str, value: &V) -> Self {
        self.line.push(' ');
        self.line.push_str(key);
        self.line.push('=');
        push_value(&mut self.line, &value.to_string());
        self
    }

    /// The finished line, for tests and custom sinks.
    #[must_use]
    pub fn as_line(&self) -> &str {
        &self.line
    }

    /// Send the record to the active sink.
    pub fn emit(self) {
        emit_line(&self.line);
    }
}

fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s.chars().any(|c| c == ' ' || c == '"' || c == '=' || c == '\\' || c.is_control())
}

fn push_value(out: &mut String, s: &str) {
    if !needs_quoting(s) {
        out.push_str(s);
        return;
    }
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Emit a record at an explicit [`Level`]:
/// `log!(Level::Info, "msg", key = value, ...)`. Prefer the per-level
/// macros.
#[macro_export]
macro_rules! log {
    ($level:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log::enabled($level) {
            $crate::log::Record::new($level, &$msg)
                $(.field(stringify!($key), &$value))*
                .emit();
        }
    };
}

/// Emit at [`Level::Error`](crate::log::Level::Error).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Error, $($arg)*) };
}

/// Emit at [`Level::Warn`](crate::log::Level::Warn).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Warn, $($arg)*) };
}

/// Emit at [`Level::Info`](crate::log::Level::Info).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Info, $($arg)*) };
}

/// Emit at [`Level::Debug`](crate::log::Level::Debug).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Debug, $($arg)*) };
}

/// Emit at [`Level::Trace`](crate::log::Level::Trace).
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::log!($crate::log::Level::Trace, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct CaptureSink {
        lines: Mutex<Vec<String>>,
    }

    impl LogSink for CaptureSink {
        fn write_line(&self, line: &str) {
            self.lines.lock().unwrap().push(line.to_string());
        }
    }

    /// One combined test: sink + level filter are process-global, so
    /// exercising them from parallel #[test] fns would race.
    #[test]
    fn records_levels_quoting_and_sinks() {
        let sink = Arc::new(CaptureSink::default());
        set_sink(Arc::clone(&sink) as Arc<dyn LogSink>);
        set_max_level(Some(Level::Info));

        // Grammar: bare values stay bare, awkward values get quoted.
        info!("attack done", users = 42, path = "/tmp/corpus.bin", note = "two words");
        // Below the filter: nothing emitted, value not even formatted.
        debug!("dropped", detail = "unseen");
        // Above the filter.
        error!("boom", kind = "io");

        let lines = sink.lines.lock().unwrap().clone();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("ts="), "line: {}", lines[0]);
        assert!(
            lines[0].ends_with(
                "level=info msg=\"attack done\" users=42 path=/tmp/corpus.bin note=\"two words\""
            ),
            "line: {}",
            lines[0]
        );
        assert!(lines[1].ends_with("level=error msg=boom kind=io"), "line: {}", lines[1]);

        // Escapes inside quoted values.
        let record = Record::new(Level::Warn, "x").field("v", "a\"b\\c\nd=e");
        assert!(
            record.as_line().ends_with("msg=x v=\"a\\\"b\\\\c\\nd=e\""),
            "line: {}",
            record.as_line()
        );

        // Level parsing round-trips, including the `off` handling in
        // set_max_level.
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("nonsense"), None);
        set_max_level(None);
        assert!(!enabled(Level::Error));
        set_max_level(Some(Level::Trace));
        assert!(enabled(Level::Trace));

        set_max_level(Some(Level::Warn));
        reset_sink();
    }
}
