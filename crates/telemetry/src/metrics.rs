//! Lock-free metric primitives: [`Counter`], [`Gauge`], the log-bucketed
//! latency [`Histogram`], and the RAII [`SpanTimer`] guard.
//!
//! Every primitive is a plain struct over `std::sync::atomic` cells —
//! recording never takes a lock, never allocates, and never panics, so a
//! metric update is safe from any thread including one that is already
//! unwinding. Handles are shared as `Arc`s (usually obtained from a
//! [`Registry`](crate::registry::Registry)).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (live connections, resident bytes,
/// corpus generation).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract 1.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The histogram's fixed bucket ladder: upper bounds in **nanoseconds**,
/// a 1-2-5 sequence per decade from 1µs to 1000s. Values above 1000s
/// land in a final overflow (`+Inf`) bucket.
pub const BUCKET_BOUNDS_NANOS: [u64; 28] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
    200_000_000_000,
    500_000_000_000,
    1_000_000_000_000,
];

/// Number of buckets, including the final overflow (`+Inf`) bucket.
pub const N_BUCKETS: usize = BUCKET_BOUNDS_NANOS.len() + 1;

/// Index of the first bucket whose upper bound covers `nanos`
/// (`nanos <= bound`); the overflow bucket for values beyond the ladder.
#[must_use]
pub fn bucket_index(nanos: u64) -> usize {
    BUCKET_BOUNDS_NANOS.partition_point(|&bound| bound < nanos)
}

/// A lock-free log-bucketed latency histogram.
///
/// Records land in the fixed [`BUCKET_BOUNDS_NANOS`] ladder (per-bucket
/// atomic counts) plus an exact nanosecond sum, so `count` and `sum` are
/// exact while quantiles are estimates with a documented error: an
/// estimated quantile always falls inside the bucket that holds the true
/// sample, i.e. it is off by at most one bucket width (the ladder's 1-2-5
/// steps bound the ratio error at 2.5×).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { buckets: [const { AtomicU64::new(0) }; N_BUCKETS], sum_nanos: AtomicU64::new(0) }
    }

    /// Record one elapsed duration.
    pub fn record(&self, elapsed: Duration) {
        self.record_nanos(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one sample given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one sample given in (non-negative, finite) seconds; NaN and
    /// negative values record as 0.
    pub fn record_secs(&self, seconds: f64) {
        let seconds = if seconds.is_nan() || seconds < 0.0 { 0.0 } else { seconds };
        // `as` saturates at the integer bounds, so huge (or infinite)
        // values land in the overflow bucket instead of wrapping.
        self.record_nanos((seconds * 1e9).round() as u64);
    }

    /// Exact number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Exact sum of all recorded samples, in nanoseconds.
    #[must_use]
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples, in seconds.
    #[must_use]
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos() as f64 / 1e9
    }

    /// A point-in-time copy of the bucket counts and sum.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; N_BUCKETS];
        for (out, bucket) in counts.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts, sum_nanos: self.sum_nanos() }
    }

    /// Estimated `q`-quantile (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Quantile {
        self.snapshot().quantile(q)
    }
}

/// An estimated quantile: the value in seconds plus an explicit marker
/// for estimates that landed in the overflow (`+Inf`) bucket.
///
/// When `overflow` is true, `seconds` is the ladder ceiling and the true
/// order statistic is only known to be **at least** that large — the
/// finite number is a floor, not an estimate. Expositions must surface
/// the marker instead of printing the ceiling as if it were measured
/// (the Prometheus analogue is a quantile resolving to the `+Inf`
/// bucket).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantile {
    /// Estimated value in seconds; the ladder ceiling when `overflow`.
    pub seconds: f64,
    /// True iff the target rank lives in the overflow (`+Inf`) bucket.
    pub overflow: bool,
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (not cumulative); the last entry is the
    /// overflow (`+Inf`) bucket.
    pub counts: [u64; N_BUCKETS],
    /// Exact sum of all samples, in nanoseconds.
    pub sum_nanos: u64,
}

impl HistogramSnapshot {
    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all samples, in seconds.
    #[must_use]
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Mean sample, in seconds (0 when empty).
    #[must_use]
    pub fn mean_seconds(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_seconds() / count as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`), linearly
    /// interpolated inside the bucket holding the target rank.
    ///
    /// Error bound: the estimate lies inside the same bucket as the true
    /// rank-order statistic, so it is off by at most that bucket's width
    /// (a ratio of ≤ 2.5× on the 1-2-5 ladder). When the target rank
    /// falls in the overflow bucket the true value is unbounded above:
    /// the result carries the ladder ceiling **and** `overflow: true`,
    /// never a fabricated finite estimate. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Quantile {
        let count = self.count();
        if count == 0 {
            return Quantile { seconds: 0.0, overflow: false };
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic the quantile asks for, 1-based.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let Some(&upper) = BUCKET_BOUNDS_NANOS.get(i) else {
                    // Overflow bucket: the ceiling is a floor on the true
                    // value, flagged explicitly.
                    let ceiling = *BUCKET_BOUNDS_NANOS.last().expect("ladder nonempty");
                    return Quantile { seconds: ceiling as f64 / 1e9, overflow: true };
                };
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NANOS[i - 1] };
                let fraction = (rank - seen) as f64 / n as f64;
                let nanos = lower as f64 + (upper - lower) as f64 * fraction;
                return Quantile { seconds: nanos / 1e9, overflow: false };
            }
            seen += n;
        }
        // Unreachable (rank <= count), but stay total.
        let ceiling = *BUCKET_BOUNDS_NANOS.last().expect("ladder nonempty");
        Quantile { seconds: ceiling as f64 / 1e9, overflow: true }
    }

    /// Cumulative `(upper_bound_seconds, count)` pairs over the finite
    /// ladder, Prometheus `le`-style; the overflow bucket is implied by
    /// [`HistogramSnapshot::count`].
    pub fn cumulative(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut acc = 0u64;
        BUCKET_BOUNDS_NANOS.iter().zip(&self.counts).map(move |(&bound, &n)| {
            acc += n;
            (bound as f64 / 1e9, acc)
        })
    }
}

/// An RAII guard that records the wall-clock elapsed since its creation
/// into a [`Histogram`] when dropped — including a drop during panic
/// unwinding, so a request that dies mid-flight still leaves a sample.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Start timing now.
    #[must_use]
    pub fn new(hist: Arc<Histogram>) -> Self {
        Self::starting_at(hist, Instant::now())
    }

    /// Adopt an earlier start point (e.g. when the target histogram is
    /// only known after some parsing that should still be billed to the
    /// span).
    #[must_use]
    pub fn starting_at(hist: Arc<Histogram>, start: Instant) -> Self {
        Self { hist, start, armed: true }
    }

    /// Wall-clock elapsed so far.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Record now and return the recorded duration (instead of waiting
    /// for the drop).
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.hist.record(elapsed);
        self.armed = false;
        elapsed
    }

    /// Drop without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ladder_is_strictly_monotonic_and_spans_1us_to_1000s() {
        for pair in BUCKET_BOUNDS_NANOS.windows(2) {
            assert!(pair[0] < pair[1], "ladder must strictly increase: {pair:?}");
        }
        assert_eq!(BUCKET_BOUNDS_NANOS[0], 1_000, "ladder starts at 1µs");
        assert_eq!(*BUCKET_BOUNDS_NANOS.last().unwrap(), 1_000_000_000_000, "ladder tops at 1000s");
        // bucket_index is monotone in the sample and consistent with the
        // `value <= bound` containment rule.
        let mut last = 0;
        for nanos in [0, 1, 999, 1_000, 1_001, 4_999, 5_000, 1_000_000, 999_999_999_999] {
            let i = bucket_index(nanos);
            assert!(i >= last);
            last = i;
            assert!(nanos <= BUCKET_BOUNDS_NANOS[i], "{nanos} must fit its bucket");
            if i > 0 {
                assert!(
                    nanos > BUCKET_BOUNDS_NANOS[i - 1],
                    "{nanos} must not fit the bucket below"
                );
            }
        }
        assert_eq!(bucket_index(1_000_000_000_001), N_BUCKETS - 1, "beyond the ladder → overflow");
    }

    #[test]
    fn quantile_estimates_stay_inside_the_exact_value_bucket() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let hist = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            // Log-uniform-ish spread across the ladder.
            let exponent = rng.gen_range(3..11u32);
            let nanos =
                rng.gen_range(1..10u64) * 10u64.pow(exponent) / 10 + rng.gen_range(0..997u64);
            exact.push(nanos);
            hist.record_nanos(nanos);
        }
        exact.sort_unstable();
        let snapshot = hist.snapshot();
        assert_eq!(snapshot.count(), exact.len() as u64);
        assert_eq!(snapshot.sum_nanos, exact.iter().sum::<u64>());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let true_value = exact[rank - 1];
            let bucket = bucket_index(true_value);
            let lower =
                if bucket == 0 { 0.0 } else { BUCKET_BOUNDS_NANOS[bucket - 1] as f64 / 1e9 };
            let upper = BUCKET_BOUNDS_NANOS[bucket] as f64 / 1e9;
            let estimate = snapshot.quantile(q);
            assert!(!estimate.overflow, "q={q}: in-ladder samples must not flag overflow");
            assert!(
                (lower..=upper).contains(&estimate.seconds),
                "q={q}: estimate {} outside the true value's bucket [{lower}, {upper}]",
                estimate.seconds
            );
        }
    }

    #[test]
    fn concurrent_recording_from_8_threads_sums_exactly() {
        let hist = Arc::new(Histogram::new());
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        hist.record_nanos(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hist.count(), 8 * per_thread);
        let expected: u64 =
            (0..8u64).map(|t| (0..per_thread).map(|i| t * 1_000 + i).sum::<u64>()).sum();
        assert_eq!(hist.sum_nanos(), expected, "nanosecond sum must be exact");
    }

    #[test]
    fn counter_and_gauge_concurrent_updates_are_exact() {
        let counter = Arc::new(Counter::new());
        let gauge = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, g) = (Arc::clone(&counter), Arc::clone(&gauge));
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        g.inc();
                        g.dec();
                    }
                    c.add(5);
                    g.add(3);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), 8 * 10_005);
        assert_eq!(gauge.get(), 24);
        gauge.set(-7);
        assert_eq!(gauge.get(), -7);
    }

    #[test]
    fn record_secs_clamps_pathological_inputs() {
        let hist = Histogram::new();
        hist.record_secs(-1.0);
        hist.record_secs(f64::NAN);
        hist.record_secs(f64::INFINITY);
        hist.record_secs(1e30); // saturates into the overflow bucket
        assert_eq!(hist.count(), 4);
        let snapshot = hist.snapshot();
        assert_eq!(snapshot.counts[0], 2, "negative and NaN record as 0");
        assert_eq!(snapshot.counts[N_BUCKETS - 1], 2, "inf/huge land in overflow");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), Quantile { seconds: 0.0, overflow: false });
        assert_eq!(Histogram::new().snapshot().mean_seconds(), 0.0);
    }

    #[test]
    fn overflow_resident_quantiles_carry_the_explicit_marker() {
        let hist = Histogram::new();
        hist.record_nanos(5_000); // in-ladder
        hist.record_nanos(1_500_000_000_000); // 1500s: beyond the ceiling
        hist.record_nanos(2_000_000_000_000); // 2000s: beyond the ceiling
                                              // p50 lands on the in-ladder sample... rank ceil(0.5*3)=2, which
                                              // is the first overflow sample.
        let p50 = hist.quantile(0.5);
        assert!(p50.overflow, "rank-2 sample lives beyond the ladder");
        assert_eq!(p50.seconds, 1000.0, "overflow reports the ceiling, not a fabrication");
        let p99 = hist.quantile(0.99);
        assert!(p99.overflow);
        // The in-ladder rank stays a real estimate.
        let p01 = hist.quantile(0.01);
        assert!(!p01.overflow);
        assert!(p01.seconds <= 5e-6);
    }

    #[test]
    fn cumulative_counts_accumulate_over_the_ladder() {
        let hist = Histogram::new();
        hist.record_nanos(500); // bucket 0 (≤ 1µs)
        hist.record_nanos(1_500_000); // ≤ 2ms
        hist.record_nanos(2_000_000_000_000); // overflow
        let snapshot = hist.snapshot();
        let cumulative: Vec<(f64, u64)> = snapshot.cumulative().collect();
        assert_eq!(cumulative.len(), BUCKET_BOUNDS_NANOS.len());
        assert_eq!(cumulative[0], (1e-6, 1));
        assert_eq!(cumulative.last().unwrap().1, 2, "overflow excluded from the finite ladder");
        assert_eq!(snapshot.count(), 3);
    }

    #[test]
    fn span_timer_records_on_drop_stop_and_panic_but_not_discard() {
        let hist = Arc::new(Histogram::new());

        // Plain drop records.
        drop(SpanTimer::new(Arc::clone(&hist)));
        assert_eq!(hist.count(), 1);

        // stop() records exactly once and returns the elapsed time.
        let timer = SpanTimer::new(Arc::clone(&hist));
        let elapsed = timer.stop();
        assert_eq!(hist.count(), 2);
        assert!(hist.sum_nanos() >= elapsed.as_nanos() as u64);

        // discard() records nothing.
        SpanTimer::new(Arc::clone(&hist)).discard();
        assert_eq!(hist.count(), 2);

        // The panic path: unwinding drops the guard, which still records.
        let hist_clone = Arc::clone(&hist);
        let result = std::panic::catch_unwind(move || {
            let _timer = SpanTimer::new(hist_clone);
            panic!("request died mid-flight");
        });
        assert!(result.is_err());
        assert_eq!(hist.count(), 3, "a panicking span must still record its sample");
    }
}
