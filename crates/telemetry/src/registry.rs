//! The named-metric [`Registry`]: get-or-register handles by
//! `(name, labels)` key, snapshot the whole family, and render the
//! Prometheus text exposition format.
//!
//! The registry map is behind an `RwLock`, but the lock is only touched
//! at registration and snapshot time — hot paths hold the returned
//! `Arc<Counter>`/`Arc<Gauge>`/`Arc<Histogram>` and update atomics
//! directly. Lock poisoning is deliberately ignored (a panicked thread
//! only ever *read* or *inserted* map entries, both of which leave the
//! map coherent), so a dying connection thread can never make metrics
//! unreadable.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, PoisonError, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Identity of one metric: a name plus an ordered label set.
///
/// `BTreeMap` ordering over this key gives the registry a deterministic
/// exposition order (name, then labels lexicographically), which the
/// golden-format tests rely on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric family name, e.g. `daemon_requests_total`.
    pub name: String,
    /// Label pairs in the order given at registration.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        Self {
            name: name.to_string(),
            labels: labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Full histogram state (boxed: the bucket array dwarfs the scalar
    /// variants).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricValue {
    /// The Prometheus type keyword for this value.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One entry of a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

/// A concurrent name→metric map handing out shared atomic handles.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name` with no labels.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or register the counter `name` with the given labels.
    ///
    /// # Panics
    /// If the `(name, labels)` key is already registered as a different
    /// metric kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name` with no labels.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or register the gauge `name` with the given labels.
    ///
    /// # Panics
    /// If the `(name, labels)` key is already registered as a different
    /// metric kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram `name` with no labels.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get or register the histogram `name` with the given labels.
    ///
    /// # Panics
    /// If the `(name, labels)` key is already registered as a different
    /// metric kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = MetricKey::new(name, labels);
        {
            let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(metric) = map.get(&key) {
                return metric.clone();
            }
        }
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        map.entry(key).or_insert_with(make).clone()
    }

    /// Capture every registered metric, in deterministic key order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        map.iter()
            .map(|(key, metric)| MetricSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect()
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): one `# TYPE` line per family, then one
    /// sample line per metric, histograms expanded into cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for snap in self.snapshot() {
            if last_family.as_deref() != Some(snap.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", snap.name, snap.value.kind());
                last_family = Some(snap.name.clone());
            }
            match &snap.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", snap.name, label_block(&snap.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", snap.name, label_block(&snap.labels, None));
                }
                MetricValue::Histogram(h) => {
                    for (le, cumulative) in h.cumulative() {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            snap.name,
                            label_block(&snap.labels, Some(&fmt_f64(le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        snap.name,
                        label_block(&snap.labels, Some("+Inf")),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        snap.name,
                        label_block(&snap.labels, None),
                        fmt_f64(h.sum_seconds())
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        snap.name,
                        label_block(&snap.labels, None),
                        h.count()
                    );
                }
            }
        }
        out
    }
}

/// Render `{k="v",...}` (empty string when there are no labels and no
/// `le`). Label values are escaped per the Prometheus text format.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Shortest round-trip float formatting (Rust's `{:?}` for f64), so
/// `0.001` renders as `0.001` and not `0.0010000000000000002`.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_handle() {
        let registry = Registry::new();
        let a = registry.counter("requests_total");
        let b = registry.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        // Distinct labels are distinct metrics.
        let x = registry.counter_with("cmd_total", &[("cmd", "attack")]);
        let y = registry.counter_with("cmd_total", &[("cmd", "stats")]);
        x.inc();
        assert_eq!(y.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        let _ = registry.counter("thing");
        let _ = registry.gauge("thing");
    }

    #[test]
    fn snapshot_is_sorted_by_name_then_labels() {
        let registry = Registry::new();
        registry.gauge("z_gauge").set(-4);
        registry.counter_with("a_total", &[("k", "b")]).inc();
        registry.counter_with("a_total", &[("k", "a")]).add(2);
        let snaps = registry.snapshot();
        let keys: Vec<(String, Vec<(String, String)>)> =
            snaps.iter().map(|s| (s.name.clone(), s.labels.clone())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(snaps[0].value, MetricValue::Counter(2));
        assert_eq!(snaps[2].value, MetricValue::Gauge(-4));
    }

    #[test]
    fn registry_survives_a_panicking_user_thread() {
        let registry = Arc::new(Registry::new());
        let clone = Arc::clone(&registry);
        let _ = std::thread::spawn(move || {
            clone.counter("survivor_total").inc();
            panic!("connection thread dies");
        })
        .join();
        // The registry stays readable and writable afterwards.
        registry.counter("survivor_total").inc();
        assert_eq!(registry.counter("survivor_total").get(), 2);
        assert_eq!(registry.snapshot().len(), 1);
    }

    #[test]
    fn prometheus_text_golden_format() {
        let registry = Registry::new();
        registry.counter_with("daemon_requests_total", &[("cmd", "attack")]).add(3);
        registry.gauge("daemon_connections_live").set(2);
        let hist = registry.histogram("attack_seconds");
        hist.record_nanos(1_500); // ≤ 2µs bucket
        hist.record_nanos(3_000_000); // ≤ 5ms bucket
        let text = registry.prometheus_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# TYPE attack_seconds histogram");
        assert_eq!(lines[1], "attack_seconds_bucket{le=\"1e-6\"} 0");
        assert_eq!(lines[2], "attack_seconds_bucket{le=\"2e-6\"} 1");
        // 28 finite buckets + +Inf + sum + count + TYPE line.
        assert_eq!(lines[28], "attack_seconds_bucket{le=\"1000.0\"} 2");
        assert_eq!(lines[29], "attack_seconds_bucket{le=\"+Inf\"} 2");
        assert_eq!(lines[30], "attack_seconds_sum 0.0030015");
        assert_eq!(lines[31], "attack_seconds_count 2");
        assert_eq!(lines[32], "# TYPE daemon_connections_live gauge");
        assert_eq!(lines[33], "daemon_connections_live 2");
        assert_eq!(lines[34], "# TYPE daemon_requests_total counter");
        assert_eq!(lines[35], "daemon_requests_total{cmd=\"attack\"} 3");
        assert_eq!(lines.len(), 36);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry.counter_with("odd_total", &[("path", "a\\b \"c\"\nd")]).inc();
        let text = registry.prometheus_text();
        assert!(text.contains("odd_total{path=\"a\\\\b \\\"c\\\"\\nd\"} 1"));
    }
}
