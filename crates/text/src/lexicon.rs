//! Lexicon lookups: the function-word list and the misspelling list used by
//! the Table-I stylometric features.
//!
//! Both lists are compiled in as sorted static arrays (see
//! [`FUNCTION_WORDS`] and [`MISSPELLINGS`]) and queried by binary search
//! over a lowercase buffer, so lookups allocate only when the query
//! contains uppercase characters.

#[path = "function_words.rs"]
mod function_words;
#[path = "misspellings.rs"]
mod misspellings;

pub use function_words::FUNCTION_WORDS;
pub use misspellings::MISSPELLINGS;

/// Index of a function word in [`FUNCTION_WORDS`], or `None`.
///
/// Case-insensitive: `"The"` matches `"the"`.
#[must_use]
pub fn function_word_index(word: &str) -> Option<usize> {
    let lower = to_lower(word);
    FUNCTION_WORDS.binary_search(&lower.as_ref()).ok()
}

/// `true` if `word` is one of the 337 function words (case-insensitive).
#[must_use]
pub fn is_function_word(word: &str) -> bool {
    function_word_index(word).is_some()
}

/// Index of a misspelling in [`MISSPELLINGS`], or `None` (case-insensitive).
#[must_use]
pub fn misspelling_index(word: &str) -> Option<usize> {
    let lower = to_lower(word);
    MISSPELLINGS.binary_search_by(|(m, _)| (*m).cmp(lower.as_ref())).ok()
}

/// The correction for a known misspelling, if any (case-insensitive).
#[must_use]
pub fn correction(word: &str) -> Option<&'static str> {
    misspelling_index(word).map(|i| MISSPELLINGS[i].1)
}

/// Lowercase without allocating when the input is already lowercase ASCII.
fn to_lower(word: &str) -> std::borrow::Cow<'_, str> {
    if word.chars().all(|c| c.is_ascii_lowercase() || !c.is_ascii_alphabetic()) {
        std::borrow::Cow::Borrowed(word)
    } else {
        std::borrow::Cow::Owned(word.to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_word_count_matches_table_i() {
        assert_eq!(FUNCTION_WORDS.len(), 337);
    }

    #[test]
    fn misspelling_count_matches_table_i() {
        assert_eq!(MISSPELLINGS.len(), 248);
    }

    #[test]
    fn function_words_sorted_unique_lowercase() {
        for w in FUNCTION_WORDS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
        assert!(FUNCTION_WORDS.iter().all(|w| w.chars().all(|c| !c.is_uppercase())));
    }

    #[test]
    fn misspellings_sorted_unique() {
        for w in MISSPELLINGS.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn common_function_words_present() {
        for w in ["the", "a", "of", "because", "herself", "notwithstanding"] {
            assert!(is_function_word(w), "{w} should be a function word");
        }
        assert!(!is_function_word("doctor"));
        assert!(!is_function_word("hepatitis"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(is_function_word("The"));
        assert!(is_function_word("BECAUSE"));
        assert!(misspelling_index("Recieve").is_some());
    }

    #[test]
    fn corrections_resolve() {
        assert_eq!(correction("recieve"), Some("receive"));
        assert_eq!(correction("diabetis"), Some("diabetes"));
        assert_eq!(correction("receive"), None);
    }

    #[test]
    fn indices_are_stable_and_in_range() {
        let i = function_word_index("the").unwrap();
        assert_eq!(FUNCTION_WORDS[i], "the");
        let j = misspelling_index("seperate").unwrap();
        assert_eq!(MISSPELLINGS[j].0, "seperate");
    }
}
