//! # dehealth-text
//!
//! Natural-language substrate for the De-Health reproduction.
//!
//! The paper's stylometric feature set (Table I) needs word/sentence/
//! paragraph segmentation, word-shape classification, a part-of-speech
//! tagger, a function-word lexicon, a misspelling lexicon, and vocabulary
//! richness statistics. No suitable offline NLP crate exists, so this
//! crate implements all of them from scratch:
//!
//! - [`mod@tokenize`] — deterministic tokenizer producing word, number,
//!   punctuation and symbol tokens, plus sentence and paragraph splitting
//!   and word-shape classification.
//! - [`lexicon`] — the 337-entry function-word list and the 248-entry
//!   common-misspelling list used by Table I, exposed as `O(1)` lookup
//!   sets.
//! - [`pos`] — a rule-based part-of-speech tagger (closed-class lexicon +
//!   suffix/shape heuristics) over a compact Penn-Treebank-like tagset,
//!   with bigram extraction.
//! - [`stats`] — vocabulary richness measures: Yule's K and
//!   hapax/dis/tris/tetrakis legomena counts.

pub mod lexicon;
pub mod pos;
pub mod stats;
pub mod tokenize;

pub use pos::{pos_bigrams, tag_tokens, PosTag};
pub use stats::{legomena, yules_k, Legomena};
pub use tokenize::{paragraphs, sentences, tokenize, Token, TokenKind, WordShape};
