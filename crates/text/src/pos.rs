//! Rule-based part-of-speech tagger.
//!
//! Table I's syntactic features require POS-tag and POS-bigram frequencies
//! ("freq. of POS tags, e.g., NP, JJ"). The paper uses an off-the-shelf
//! tagger; no offline crate provides one, so this module implements a
//! deterministic rule-based tagger in the classic lexicon-plus-heuristics
//! style (closed-class word lists, suffix rules, shape rules, and a small
//! set of contextual fix-ups). It is not state of the art, but it is
//! consistent — which is what stylometry needs: the same writing habit must
//! always map to the same tag histogram.

use crate::tokenize::{Token, TokenKind, WordShape};

/// Compact Penn-Treebank-like tagset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PosTag {
    /// Common noun, singular (`doctor`).
    Nn,
    /// Common noun, plural (`doctors`).
    Nns,
    /// Proper noun (`WebMD`).
    Nnp,
    /// Personal pronoun (`she`).
    Prp,
    /// Possessive pronoun (`her`).
    PrpDollar,
    /// Base verb (`take`).
    Vb,
    /// Past tense verb (`took`, `-ed`).
    Vbd,
    /// Gerund / present participle (`taking`).
    Vbg,
    /// 3rd-person singular present (`takes`).
    Vbz,
    /// Modal (`should`).
    Md,
    /// Adjective (`chronic`).
    Jj,
    /// Comparative adjective (`worse`, `-er`).
    Jjr,
    /// Superlative adjective (`worst`, `-est`).
    Jjs,
    /// Adverb (`really`).
    Rb,
    /// Determiner (`the`).
    Dt,
    /// Preposition / subordinating conjunction (`of`, `because`).
    In,
    /// Coordinating conjunction (`and`).
    Cc,
    /// Cardinal number (`42`).
    Cd,
    /// Wh-word (`which`, `who`).
    Wp,
    /// Interjection (`hello`, `ugh`).
    Uh,
    /// `to` as infinitive marker.
    To,
    /// Existential `there`.
    Ex,
    /// Punctuation.
    Punct,
    /// Symbols and anything unclassified.
    Sym,
}

impl PosTag {
    /// All tags, in a fixed order usable as feature indices.
    pub const ALL: [PosTag; 24] = [
        PosTag::Nn,
        PosTag::Nns,
        PosTag::Nnp,
        PosTag::Prp,
        PosTag::PrpDollar,
        PosTag::Vb,
        PosTag::Vbd,
        PosTag::Vbg,
        PosTag::Vbz,
        PosTag::Md,
        PosTag::Jj,
        PosTag::Jjr,
        PosTag::Jjs,
        PosTag::Rb,
        PosTag::Dt,
        PosTag::In,
        PosTag::Cc,
        PosTag::Cd,
        PosTag::Wp,
        PosTag::Uh,
        PosTag::To,
        PosTag::Ex,
        PosTag::Punct,
        PosTag::Sym,
    ];

    /// Index of this tag in [`PosTag::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&t| t == self).expect("tag in ALL")
    }

    /// Penn-Treebank-style name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PosTag::Nn => "NN",
            PosTag::Nns => "NNS",
            PosTag::Nnp => "NNP",
            PosTag::Prp => "PRP",
            PosTag::PrpDollar => "PRP$",
            PosTag::Vb => "VB",
            PosTag::Vbd => "VBD",
            PosTag::Vbg => "VBG",
            PosTag::Vbz => "VBZ",
            PosTag::Md => "MD",
            PosTag::Jj => "JJ",
            PosTag::Jjr => "JJR",
            PosTag::Jjs => "JJS",
            PosTag::Rb => "RB",
            PosTag::Dt => "DT",
            PosTag::In => "IN",
            PosTag::Cc => "CC",
            PosTag::Cd => "CD",
            PosTag::Wp => "WP",
            PosTag::Uh => "UH",
            PosTag::To => "TO",
            PosTag::Ex => "EX",
            PosTag::Punct => "PUNCT",
            PosTag::Sym => "SYM",
        }
    }
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "each", "every", "either", "neither",
    "some", "any", "no", "all", "both", "another",
];
const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "about", "against", "between", "into", "through",
    "during", "before", "after", "above", "below", "from", "up", "down", "out", "off", "over",
    "under", "since", "until", "while", "because", "although", "though", "if", "unless", "as",
    "than", "whether", "per", "via", "without", "within", "upon", "toward", "towards", "among",
    "amongst", "despite", "except", "like",
];
const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "so", "yet", "plus"];
const PRONOUNS: &[&str] = &[
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "him",
    "them",
    "us",
    "myself",
    "yourself",
    "himself",
    "herself",
    "itself",
    "ourselves",
    "themselves",
    "anyone",
    "everyone",
    "someone",
    "anybody",
    "everybody",
    "somebody",
    "nothing",
    "something",
    "anything",
    "everything",
    "one",
];
const POSSESSIVES: &[&str] = &[
    "my", "your", "his", "her", "its", "our", "their", "mine", "yours", "hers", "ours", "theirs",
    "whose",
];
const MODALS: &[&str] = &[
    "can",
    "could",
    "may",
    "might",
    "must",
    "shall",
    "should",
    "will",
    "would",
    "ought",
    "cannot",
    "can't",
    "won't",
    "couldn't",
    "shouldn't",
    "wouldn't",
    "mustn't",
];
const AUX_BE_HAVE_DO: &[(&str, PosTag)] = &[
    ("be", PosTag::Vb),
    ("am", PosTag::Vbz),
    ("is", PosTag::Vbz),
    ("are", PosTag::Vbz),
    ("was", PosTag::Vbd),
    ("were", PosTag::Vbd),
    ("been", PosTag::Vbd),
    ("being", PosTag::Vbg),
    ("have", PosTag::Vb),
    ("has", PosTag::Vbz),
    ("had", PosTag::Vbd),
    ("having", PosTag::Vbg),
    ("do", PosTag::Vb),
    ("does", PosTag::Vbz),
    ("did", PosTag::Vbd),
    ("doing", PosTag::Vbg),
    ("don't", PosTag::Vb),
    ("doesn't", PosTag::Vbz),
    ("didn't", PosTag::Vbd),
    ("isn't", PosTag::Vbz),
    ("aren't", PosTag::Vbz),
    ("wasn't", PosTag::Vbd),
    ("weren't", PosTag::Vbd),
    ("i'm", PosTag::Prp),
    ("it's", PosTag::Prp),
];
const WH_WORDS: &[&str] = &[
    "who",
    "whom",
    "which",
    "what",
    "when",
    "where",
    "why",
    "how",
    "whoever",
    "whatever",
    "whenever",
    "wherever",
    "whichever",
];
const INTERJECTIONS: &[&str] = &[
    "hello", "hi", "hey", "oh", "ugh", "wow", "ouch", "yes", "yeah", "no", "okay", "ok", "please",
    "thanks", "thank", "sorry", "well",
];
const COMMON_ADVERBS: &[&str] = &[
    "very",
    "really",
    "too",
    "also",
    "just",
    "now",
    "then",
    "here",
    "there",
    "never",
    "always",
    "often",
    "sometimes",
    "again",
    "soon",
    "already",
    "still",
    "even",
    "maybe",
    "perhaps",
    "quite",
    "almost",
    "away",
    "back",
    "however",
    "not",
    "n't",
    "today",
    "yesterday",
    "tomorrow",
];
const COMMON_ADJECTIVES: &[&str] = &[
    "good", "bad", "new", "old", "high", "low", "severe", "chronic", "acute", "sick", "ill",
    "sore", "tired", "scared", "worried", "same", "other", "first", "last", "next", "many", "few",
    "much", "little", "own", "sure", "able", "normal", "common", "rare",
];
const COMMON_BASE_VERBS: &[&str] = &[
    "go", "get", "take", "make", "know", "think", "see", "come", "want", "use", "find", "give",
    "tell", "ask", "feel", "try", "need", "help", "start", "stop", "keep", "let", "seem", "talk",
    "turn", "hurt", "ache", "eat", "sleep", "drink", "call", "say",
];

fn in_list(list: &[&str], w: &str) -> bool {
    list.contains(&w)
}

fn tag_word(lower: &str, shape: WordShape, sentence_initial: bool) -> PosTag {
    if let Some(&(_, t)) = AUX_BE_HAVE_DO.iter().find(|&&(w, _)| w == lower) {
        return t;
    }
    if in_list(MODALS, lower) {
        return PosTag::Md;
    }
    if lower == "to" {
        return PosTag::To;
    }
    if lower == "there" {
        return PosTag::Ex;
    }
    if in_list(DETERMINERS, lower) {
        return PosTag::Dt;
    }
    if in_list(POSSESSIVES, lower) {
        return PosTag::PrpDollar;
    }
    if in_list(PRONOUNS, lower) {
        return PosTag::Prp;
    }
    if in_list(CONJUNCTIONS, lower) {
        return PosTag::Cc;
    }
    if in_list(WH_WORDS, lower) {
        return PosTag::Wp;
    }
    if in_list(PREPOSITIONS, lower) {
        return PosTag::In;
    }
    if in_list(INTERJECTIONS, lower) {
        return PosTag::Uh;
    }
    if in_list(COMMON_ADVERBS, lower) {
        return PosTag::Rb;
    }
    if in_list(COMMON_ADJECTIVES, lower) {
        return PosTag::Jj;
    }
    if in_list(COMMON_BASE_VERBS, lower) {
        return PosTag::Vb;
    }
    // Proper noun by shape: capitalized or camel-case away from the
    // sentence start.
    if !sentence_initial
        && matches!(shape, WordShape::Capitalized | WordShape::AllUpper | WordShape::Camel)
    {
        return PosTag::Nnp;
    }
    // Suffix heuristics, longest first.
    suffix_tag(lower)
}

fn suffix_tag(lower: &str) -> PosTag {
    let n = lower.len();
    let has = |s: &str| lower.ends_with(s) && n > s.len() + 1;
    if has("ly") {
        PosTag::Rb
    } else if has("ing") {
        PosTag::Vbg
    } else if has("ed") {
        PosTag::Vbd
    } else if has("tion")
        || has("sion")
        || has("ment")
        || has("ness")
        || has("ity")
        || has("ism")
        || has("itis")
        || has("osis")
    {
        PosTag::Nn
    } else if has("ous")
        || has("ful")
        || has("able")
        || has("ible")
        || has("ive")
        || has("ical")
        || has("less")
        || has("ish")
    {
        PosTag::Jj
    } else if has("est") {
        PosTag::Jjs
    } else if has("er") {
        // ambiguous (comparative vs agentive noun); treat as comparative
        // only after adjective-ish stems is hard without a lexicon, default
        // to JJR which Table I also counts.
        PosTag::Jjr
    } else if has("es") || (has("s") && !lower.ends_with("ss") && !lower.ends_with("us")) {
        PosTag::Nns
    } else {
        PosTag::Nn
    }
}

/// Tag a token sequence.
///
/// `tokens` should come from [`crate::tokenize::tokenize`]. A token is
/// sentence-initial if it is the first token or follows `.`, `!` or `?`.
#[must_use]
pub fn tag_tokens(tokens: &[Token<'_>]) -> Vec<PosTag> {
    let mut tags = Vec::with_capacity(tokens.len());
    let mut sentence_initial = true;
    for tok in tokens {
        let tag = match tok.kind {
            TokenKind::Punct => PosTag::Punct,
            TokenKind::Symbol => PosTag::Sym,
            TokenKind::Number => PosTag::Cd,
            TokenKind::Word => {
                let lower = tok.text.to_lowercase();
                tag_word(&lower, tok.shape(), sentence_initial)
            }
        };
        sentence_initial = matches!(tok.text, "." | "!" | "?");
        tags.push(tag);
    }
    // Contextual fix-up: DT/PRP$ followed by a tagged verb is almost always
    // a noun ("my ache", "the need").
    for i in 1..tags.len() {
        if matches!(tags[i - 1], PosTag::Dt | PosTag::PrpDollar) && matches!(tags[i], PosTag::Vb) {
            tags[i] = PosTag::Nn;
        }
    }
    tags
}

/// Consecutive tag pairs, skipping nothing: `tags.len().saturating_sub(1)`
/// bigrams.
#[must_use]
pub fn pos_bigrams(tags: &[PosTag]) -> Vec<(PosTag, PosTag)> {
    tags.windows(2).map(|w| (w[0], w[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn tag_text(text: &str) -> Vec<(String, PosTag)> {
        let toks = tokenize(text);
        let tags = tag_tokens(&toks);
        toks.iter().zip(tags).map(|(t, g)| (t.text.to_string(), g)).collect()
    }

    fn tag_of(text: &str, word: &str) -> PosTag {
        tag_text(text).into_iter().find(|(w, _)| w == word).map(|(_, t)| t).unwrap()
    }

    #[test]
    fn closed_class_words() {
        assert_eq!(tag_of("the doctor", "the"), PosTag::Dt);
        assert_eq!(tag_of("she is sick", "she"), PosTag::Prp);
        assert_eq!(tag_of("my doctor", "my"), PosTag::PrpDollar);
        assert_eq!(tag_of("tea and rest", "and"), PosTag::Cc);
        assert_eq!(tag_of("pain in the arm", "in"), PosTag::In);
        assert_eq!(tag_of("I should rest", "should"), PosTag::Md);
        assert_eq!(tag_of("I want to rest", "to"), PosTag::To);
    }

    #[test]
    fn suffix_rules() {
        assert_eq!(tag_of("he walked quickly", "quickly"), PosTag::Rb);
        assert_eq!(tag_of("it was walking", "walking"), PosTag::Vbg);
        assert_eq!(tag_of("she jumped", "jumped"), PosTag::Vbd);
        assert_eq!(tag_of("an infection", "infection"), PosTag::Nn);
        assert_eq!(tag_of("it is painful", "painful"), PosTag::Jj);
        assert_eq!(tag_of("two symptoms", "symptoms"), PosTag::Nns);
        assert_eq!(tag_of("hepatitis", "hepatitis"), PosTag::Nn);
    }

    #[test]
    fn numbers_and_punct() {
        let tags = tag_text("ALT is 400 now.");
        assert!(tags.iter().any(|(w, t)| w == "400" && *t == PosTag::Cd));
        assert!(tags.iter().any(|(w, t)| w == "." && *t == PosTag::Punct));
    }

    #[test]
    fn proper_noun_mid_sentence() {
        assert_eq!(tag_of("I asked Simmons today", "Simmons"), PosTag::Nnp);
        // Sentence-initial capitalization is not proper-noun evidence.
        assert_ne!(tag_of("Doctors help.", "Doctors"), PosTag::Nnp);
    }

    #[test]
    fn dt_verb_fixup() {
        // "need" is in the base-verb list but "the need" must be a noun.
        assert_eq!(tag_of("the need for advice", "need"), PosTag::Nn);
        assert_eq!(tag_of("I need advice", "need"), PosTag::Vb);
    }

    #[test]
    fn bigram_count() {
        let toks = tokenize("I am sick");
        let tags = tag_tokens(&toks);
        assert_eq!(pos_bigrams(&tags).len(), 2);
        assert!(pos_bigrams(&[]).is_empty());
    }

    #[test]
    fn all_tags_indexable() {
        for (i, t) in PosTag::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        assert_eq!(PosTag::ALL.len(), 24);
    }

    #[test]
    fn tagger_is_total() {
        // Must produce exactly one tag per token for arbitrary input.
        let text = "~~ weird $$ input 123 caf\u{e9} WHY?!";
        let toks = tokenize(text);
        assert_eq!(tag_tokens(&toks).len(), toks.len());
    }
}
