//! Vocabulary-richness statistics (Table I, "Vocabulary richness"):
//! Yule's K and hapax/dis/tris/tetrakis legomena.

use std::collections::HashMap;

/// Counts of words occurring exactly 1, 2, 3 and 4 times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Legomena {
    /// Words occurring exactly once.
    pub hapax: usize,
    /// Words occurring exactly twice.
    pub dis: usize,
    /// Words occurring exactly three times.
    pub tris: usize,
    /// Words occurring exactly four times.
    pub tetrakis: usize,
}

/// Case-insensitive word-frequency table.
#[must_use]
pub fn frequency_table<'a, I>(words: I) -> HashMap<String, usize>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut table = HashMap::new();
    for w in words {
        *table.entry(w.to_lowercase()).or_insert(0) += 1;
    }
    table
}

/// Yule's characteristic K over a word-frequency table.
///
/// `K = 10^4 · (Σ_i i²·V(i) − N) / N²` where `V(i)` is the number of types
/// occurring `i` times and `N` the token count. Higher K means lower
/// vocabulary richness (more repetition). Returns 0 for fewer than two
/// tokens.
#[must_use]
pub fn yules_k(freqs: &HashMap<String, usize>) -> f64 {
    let n: usize = freqs.values().sum();
    if n < 2 {
        return 0.0;
    }
    let m2: f64 = freqs.values().map(|&c| (c * c) as f64).sum();
    1e4 * (m2 - n as f64) / (n as f64 * n as f64)
}

/// Hapax/dis/tris/tetrakis legomena counts over a frequency table.
#[must_use]
pub fn legomena(freqs: &HashMap<String, usize>) -> Legomena {
    let mut l = Legomena::default();
    for &c in freqs.values() {
        match c {
            1 => l.hapax += 1,
            2 => l.dis += 1,
            3 => l.tris += 1,
            4 => l.tetrakis += 1,
            _ => {}
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_table_case_insensitive() {
        let t = frequency_table(["The", "the", "Doctor"]);
        assert_eq!(t["the"], 2);
        assert_eq!(t["doctor"], 1);
    }

    #[test]
    fn legomena_counts() {
        let t = frequency_table(["a", "b", "b", "c", "c", "c", "d", "d", "d", "d"]);
        let l = legomena(&t);
        assert_eq!(l, Legomena { hapax: 1, dis: 1, tris: 1, tetrakis: 1 });
    }

    #[test]
    fn yules_k_zero_for_all_distinct_large_vocab() {
        // All words distinct: M2 == N so K == 0.
        let t = frequency_table(["a", "b", "c", "d"]);
        assert!((yules_k(&t)).abs() < 1e-12);
    }

    #[test]
    fn yules_k_increases_with_repetition() {
        let varied = frequency_table(["a", "b", "c", "d", "e", "f"]);
        let repetitive = frequency_table(["a", "a", "a", "b", "b", "c"]);
        assert!(yules_k(&repetitive) > yules_k(&varied));
    }

    #[test]
    fn yules_k_known_value() {
        // N=4 tokens, one type twice + two once: M2 = 4+1+1 = 6.
        // K = 1e4 * (6-4)/16 = 1250.
        let t = frequency_table(["a", "a", "b", "c"]);
        assert!((yules_k(&t) - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: HashMap<String, usize> = HashMap::new();
        assert_eq!(yules_k(&empty), 0.0);
        let one = frequency_table(["solo"]);
        assert_eq!(yules_k(&one), 0.0);
        assert_eq!(legomena(&empty), Legomena::default());
    }
}
