//! Deterministic tokenizer, sentence/paragraph segmentation, and word-shape
//! classification.
//!
//! The tokenizer is intentionally simple and fully specified so that
//! stylometric feature extraction is reproducible: a token is a maximal run
//! of alphabetic characters (plus internal apostrophes/hyphens), a maximal
//! run of digits, or a single punctuation/symbol character. Whitespace
//! separates tokens and is never emitted.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word, possibly with internal `'` or `-` (e.g. `don't`).
    Word,
    /// Maximal run of ASCII digits (e.g. `2015`).
    Number,
    /// Single punctuation character from the sentence-punctuation set
    /// `. , ; : ! ? ' " ( ) -`.
    Punct,
    /// Any other non-alphanumeric, non-whitespace character (e.g. `$`, `~`).
    Symbol,
}

/// Case/shape class of a word token, used by the "word shape" stylometric
/// features in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordShape {
    /// Every alphabetic character is uppercase and the word has ≥ 2 letters
    /// (e.g. `ALT`).
    AllUpper,
    /// Every alphabetic character is lowercase (e.g. `doctor`).
    AllLower,
    /// First character uppercase, the rest lowercase (e.g. `Doctor`).
    Capitalized,
    /// Mixed case that is not simple capitalization (e.g. `WebMD`,
    /// `camelCase`).
    Camel,
    /// Single uppercase letter, or shapes that fit no other class.
    Other,
}

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text, borrowed from the input.
    pub text: &'a str,
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token in the input.
    pub start: usize,
}

impl<'a> Token<'a> {
    /// Number of `char`s in the token.
    #[must_use]
    pub fn char_len(&self) -> usize {
        self.text.chars().count()
    }

    /// Word-shape class. Only meaningful for [`TokenKind::Word`] tokens;
    /// other kinds return [`WordShape::Other`].
    #[must_use]
    pub fn shape(&self) -> WordShape {
        if self.kind != TokenKind::Word {
            return WordShape::Other;
        }
        let letters: Vec<char> = self.text.chars().filter(|c| c.is_alphabetic()).collect();
        if letters.is_empty() {
            return WordShape::Other;
        }
        let n_upper = letters.iter().filter(|c| c.is_uppercase()).count();
        let first_upper = letters[0].is_uppercase();
        if n_upper == letters.len() {
            if letters.len() >= 2 {
                WordShape::AllUpper
            } else {
                WordShape::Other
            }
        } else if n_upper == 0 {
            WordShape::AllLower
        } else if first_upper && n_upper == 1 {
            WordShape::Capitalized
        } else {
            WordShape::Camel
        }
    }
}

const PUNCT_SET: &[char] = &['.', ',', ';', ':', '!', '?', '\'', '"', '(', ')', '-'];

fn is_punct(c: char) -> bool {
    PUNCT_SET.contains(&c)
}

fn is_word_char(c: char) -> bool {
    c.is_alphabetic()
}

/// Tokenize `text` into [`Token`]s.
///
/// (The two look-ahead branches below are textually identical but guard
/// different predicates, hence the lint allowance.)
///
/// Guarantees:
/// - never panics on any UTF-8 input,
/// - token spans are non-overlapping and increasing,
/// - concatenating token texts with the skipped gaps reproduces the input.
#[must_use]
#[allow(clippy::if_same_then_else)]
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    let mut tokens = Vec::new();
    let bytes_len = text.len();
    let mut iter = text.char_indices().peekable();
    while let Some((start, c)) = iter.next() {
        if c.is_whitespace() {
            continue;
        }
        if is_word_char(c) {
            // Maximal alphabetic run, allowing internal ' and - when
            // followed by another letter (don't, well-known).
            let mut end = start + c.len_utf8();
            while let Some(&(i, nc)) = iter.peek() {
                if is_word_char(nc) {
                    end = i + nc.len_utf8();
                    iter.next();
                } else if (nc == '\'' || nc == '-') && {
                    // Look one past the separator for a letter.
                    let after = &text[i + nc.len_utf8()..];
                    after.chars().next().is_some_and(is_word_char)
                } {
                    end = i + nc.len_utf8();
                    iter.next();
                } else {
                    break;
                }
            }
            debug_assert!(end <= bytes_len);
            tokens.push(Token { text: &text[start..end], kind: TokenKind::Word, start });
        } else if c.is_ascii_digit() {
            let mut end = start + 1;
            while let Some(&(i, nc)) = iter.peek() {
                if nc.is_ascii_digit() {
                    end = i + 1;
                    iter.next();
                } else {
                    break;
                }
            }
            tokens.push(Token { text: &text[start..end], kind: TokenKind::Number, start });
        } else {
            let kind = if is_punct(c) { TokenKind::Punct } else { TokenKind::Symbol };
            let end = start + c.len_utf8();
            tokens.push(Token { text: &text[start..end], kind, start });
        }
    }
    tokens
}

/// Split `text` into sentences.
///
/// A sentence boundary is a `.`, `!` or `?` followed by whitespace-or-end.
/// Returns non-empty trimmed sentence slices.
#[must_use]
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if matches!(c, '.' | '!' | '?') {
            let at_end = chars.peek().is_none_or(|&(_, nc)| nc.is_whitespace());
            if at_end {
                let end = i + c.len_utf8();
                let s = text[start..end].trim();
                if !s.is_empty() {
                    out.push(s);
                }
                start = end;
            }
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Split `text` into paragraphs (separated by one or more blank lines).
#[must_use]
pub fn paragraphs(text: &str) -> Vec<&str> {
    text.split("\n\n")
        .flat_map(|p| p.split("\r\n\r\n"))
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(text: &str) -> Vec<&str> {
        tokenize(text).into_iter().filter(|t| t.kind == TokenKind::Word).map(|t| t.text).collect()
    }

    #[test]
    fn basic_tokenization() {
        let toks = tokenize("I have hep c, genotype 3b!");
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["I", "have", "hep", "c", ",", "genotype", "3", "b", "!"]);
    }

    #[test]
    fn contraction_kept_whole() {
        assert_eq!(words("don't stop"), vec!["don't", "stop"]);
    }

    #[test]
    fn hyphenated_word_kept_whole() {
        assert_eq!(words("well-known issue"), vec!["well-known", "issue"]);
    }

    #[test]
    fn trailing_apostrophe_not_absorbed() {
        let toks = tokenize("doctors' advice");
        assert_eq!(toks[0].text, "doctors");
        assert_eq!(toks[1].kind, TokenKind::Punct);
    }

    #[test]
    fn numbers_are_separate_tokens() {
        let toks = tokenize("ALT is 400 now");
        let nums: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokenKind::Number).map(|t| t.text).collect();
        assert_eq!(nums, vec!["400"]);
    }

    #[test]
    fn symbols_classified() {
        let toks = tokenize("cost $30 @home");
        assert!(toks.iter().any(|t| t.text == "$" && t.kind == TokenKind::Symbol));
        assert!(toks.iter().any(|t| t.text == "@" && t.kind == TokenKind::Symbol));
    }

    #[test]
    fn spans_are_increasing_and_in_bounds() {
        let text = "Hello, world! \u{e9}t\u{e9} 42.";
        let toks = tokenize(text);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end);
            prev_end = t.start + t.text.len();
            assert!(prev_end <= text.len());
            assert_eq!(&text[t.start..prev_end], t.text);
        }
    }

    #[test]
    fn word_shapes() {
        let shape = |s: &str| tokenize(s)[0].shape();
        assert_eq!(shape("ALT"), WordShape::AllUpper);
        assert_eq!(shape("doctor"), WordShape::AllLower);
        assert_eq!(shape("Doctor"), WordShape::Capitalized);
        assert_eq!(shape("WebMD"), WordShape::Camel);
        assert_eq!(shape("camelCase"), WordShape::Camel);
        assert_eq!(shape("I"), WordShape::Other);
    }

    #[test]
    fn sentence_split_basic() {
        let s = sentences("I am sick. Are you? Yes! indeed");
        assert_eq!(s, vec!["I am sick.", "Are you?", "Yes!", "indeed"]);
    }

    #[test]
    fn sentence_split_does_not_break_decimal() {
        let s = sentences("my viral load is 3.5 million today");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn paragraph_split() {
        let p = paragraphs("first para\nstill first\n\nsecond para\n\n\nthird");
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], "second para");
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
        assert!(sentences("").is_empty());
        assert!(paragraphs("\n\n\n").is_empty());
    }

    #[test]
    fn unicode_words() {
        let toks = tokenize("na\u{ef}ve caf\u{e9}");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::Word);
        assert_eq!(toks[0].char_len(), 5);
    }
}
