//! The re-identifiability bounds of Section IV (Theorems 1-4 and
//! Corollaries 1-3).
//!
//! Notation (matching the paper):
//!
//! - `λ = E[f(u, u')]` — mean feature distance of *correct* pairs;
//! - `λ̄ = E[f(u, v)]`, `v ≠ u'` — mean distance of *incorrect* pairs;
//! - `θ, θ̄` — the ranges of correct / incorrect distances;
//! - `δ = max(θ, θ̄)`;
//! - `n₁, n₂` — anonymized / auxiliary user counts; `n` — the asymptotic
//!   size parameter; `K` — candidate-set size; `α` — the fraction of
//!   anonymized users considered.
//!
//! Every bound below returns a *lower* bound on the respective success
//! probability, clamped to `[0, 1]`; every condition function returns the
//! paper's sufficient condition for a.a.s. success.

/// The distance-distribution parameters `(λ, λ̄, θ, θ̄)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceModel {
    /// Mean distance of correct pairs `E[f(u,u')]`.
    pub lambda_correct: f64,
    /// Mean distance of incorrect pairs `E[f(u,v)]`.
    pub lambda_incorrect: f64,
    /// Range `θ = θ_u − θ_l` of correct distances.
    pub range_correct: f64,
    /// Range `θ̄ = θ̄_u − θ̄_l` of incorrect distances.
    pub range_incorrect: f64,
}

impl DistanceModel {
    /// `δ = max(θ, θ̄)`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.range_correct.max(self.range_incorrect)
    }

    /// The separation gap `|λ − λ̄|`.
    #[must_use]
    pub fn gap(&self) -> f64 {
        (self.lambda_correct - self.lambda_incorrect).abs()
    }

    /// Validate the model: ranges must be positive, means distinct.
    ///
    /// # Panics
    /// Panics when `λ = λ̄` (the theorems require `λ ≠ λ̄`) or a range is
    /// non-positive.
    pub fn validate(&self) {
        assert!(self.gap() > 0.0, "theorems require lambda != lambda-bar");
        assert!(self.range_correct > 0.0 && self.range_incorrect > 0.0, "ranges must be positive");
    }
}

fn clamp01(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

/// Theorem 1: probability of de-anonymizing `u` from the pair `{u', v}`:
/// `Pr ≥ 1 − 2·exp(−(λ−λ̄)²/(4δ²))`.
///
/// ```
/// use dehealth_theory::{pairwise_bound, DistanceModel};
/// let m = DistanceModel {
///     lambda_correct: 1.0,
///     lambda_incorrect: 3.0, // gap 2
///     range_correct: 1.0,
///     range_incorrect: 1.0,
/// };
/// let p = pairwise_bound(&m);
/// assert!((p - (1.0 - 2.0 * (-1.0f64).exp())).abs() < 1e-12);
/// ```
#[must_use]
pub fn pairwise_bound(m: &DistanceModel) -> f64 {
    m.validate();
    let d = m.delta();
    clamp01(1.0 - 2.0 * (-(m.gap().powi(2)) / (4.0 * d * d)).exp())
}

/// Corollary 1's a.a.s. condition: `|λ−λ̄|/(2θ) ≥ sqrt(2 ln n + ln 2)`,
/// with `θ = max(θ, θ̄)` used conservatively.
#[must_use]
pub fn pairwise_aas_condition(m: &DistanceModel, n: usize) -> bool {
    m.validate();
    let lhs = m.gap() / (2.0 * m.delta());
    lhs >= (2.0 * (n as f64).ln() + 2f64.ln()).sqrt()
}

/// Corollary 2's condition for de-anonymizing `u` from all of `V₂`:
/// `|λ−λ̄|/(2θ) ≥ sqrt(2 ln n + ln 2n₂)`.
#[must_use]
pub fn full_aas_condition(m: &DistanceModel, n: usize, n2: usize) -> bool {
    m.validate();
    let lhs = m.gap() / (2.0 * m.delta());
    lhs >= (2.0 * (n as f64).ln() + (2.0 * n2 as f64).ln()).sqrt()
}

/// Theorem 2: probability that ∆₁ is α-re-identifiable:
/// `Pr ≥ 1 − exp(ln(2·α·n₁·n₂) − (λ−λ̄)²/(4δ²))`.
#[must_use]
pub fn alpha_bound(m: &DistanceModel, alpha: f64, n1: usize, n2: usize) -> f64 {
    m.validate();
    assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
    let d = m.delta();
    let ln_term = (2.0 * alpha * n1 as f64 * n2 as f64).max(f64::MIN_POSITIVE).ln();
    clamp01(1.0 - (ln_term - m.gap().powi(2) / (4.0 * d * d)).exp())
}

/// Corollary 3's a.a.s. condition for α-re-identifiability:
/// `|λ−λ̄|/(2θ) ≥ sqrt(2 ln n + ln 2αn₁n₂)`.
#[must_use]
pub fn alpha_aas_condition(m: &DistanceModel, alpha: f64, n: usize, n1: usize, n2: usize) -> bool {
    m.validate();
    let lhs = m.gap() / (2.0 * m.delta());
    let rhs = (2.0 * (n as f64).ln() + (2.0 * alpha * n1 as f64 * n2 as f64).ln()).sqrt();
    lhs >= rhs
}

/// Theorem 3(i): Top-K re-identifiability of one user:
/// `Pr ≥ 1 − exp(ln 2(n₂−K) − (λ−λ̄)²/(4δ²))`.
#[must_use]
pub fn topk_bound(m: &DistanceModel, n2: usize, k: usize) -> f64 {
    m.validate();
    assert!(k <= n2, "K cannot exceed n2");
    let d = m.delta();
    if n2 == k {
        return 1.0; // the candidate set is everything
    }
    let ln_term = (2.0 * (n2 - k) as f64).ln();
    clamp01(1.0 - (ln_term - m.gap().powi(2) / (4.0 * d * d)).exp())
}

/// Theorem 3(ii): a.a.s. condition
/// `|λ−λ̄|/(2θ) ≥ sqrt(ln 2(n₂−K) + 2 ln n)`.
#[must_use]
pub fn topk_aas_condition(m: &DistanceModel, n: usize, n2: usize, k: usize) -> bool {
    m.validate();
    if n2 <= k {
        return true;
    }
    let lhs = m.gap() / (2.0 * m.delta());
    lhs >= ((2.0 * (n2 - k) as f64).ln() + 2.0 * (n as f64).ln()).sqrt()
}

/// Theorem 4(i): Top-K α-re-identifiability of a user set:
/// `Pr ≥ 1 − exp(ln 2αn₁(n₂−K) − (λ−λ̄)²/(4δ²))`.
#[must_use]
pub fn topk_alpha_bound(m: &DistanceModel, alpha: f64, n1: usize, n2: usize, k: usize) -> f64 {
    m.validate();
    assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
    assert!(k <= n2, "K cannot exceed n2");
    if n2 == k {
        return 1.0;
    }
    let d = m.delta();
    let ln_term = (2.0 * alpha * n1 as f64 * (n2 - k) as f64).max(f64::MIN_POSITIVE).ln();
    clamp01(1.0 - (ln_term - m.gap().powi(2) / (4.0 * d * d)).exp())
}

/// Theorem 4(ii): a.a.s. condition
/// `|λ−λ̄|/(2θ) ≥ sqrt(ln 2αn₁(n₂−K) + 2 ln n)`.
#[must_use]
pub fn topk_alpha_aas_condition(
    m: &DistanceModel,
    alpha: f64,
    n: usize,
    n1: usize,
    n2: usize,
    k: usize,
) -> bool {
    m.validate();
    if n2 <= k {
        return true;
    }
    let lhs = m.gap() / (2.0 * m.delta());
    let rhs = ((2.0 * alpha * n1 as f64 * (n2 - k) as f64).ln() + 2.0 * (n as f64).ln()).sqrt();
    lhs >= rhs
}

/// The minimum separation gap `|λ−λ̄|` (as a multiple of `δ`) needed for
/// the Theorem-1 bound to reach success probability `p`.
///
/// Inverts `1 − 2 exp(−g²/4) = p` to `g = 2·sqrt(ln(2/(1−p)))`.
///
/// # Panics
/// Panics unless `0 ≤ p < 1`.
#[must_use]
pub fn required_gap_over_delta(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "p in [0,1)");
    2.0 * ((2.0 / (1.0 - p)).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gap: f64) -> DistanceModel {
        DistanceModel {
            lambda_correct: 1.0,
            lambda_incorrect: 1.0 + gap,
            range_correct: 1.0,
            range_incorrect: 1.0,
        }
    }

    #[test]
    fn pairwise_bound_increases_with_gap() {
        let lo = pairwise_bound(&model(0.5));
        let hi = pairwise_bound(&model(4.0));
        assert!(hi > lo);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn pairwise_bound_known_value() {
        // gap 2, delta 1: 1 - 2 exp(-1).
        let p = pairwise_bound(&model(2.0));
        assert!((p - (1.0 - 2.0 * (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn bound_is_trivial_for_small_gaps() {
        // Tiny gap: bound collapses to 0 (clamped).
        assert_eq!(pairwise_bound(&model(0.01)), 0.0);
    }

    #[test]
    fn topk_bound_increases_with_k() {
        let m = model(6.0);
        let p10 = topk_bound(&m, 1000, 10);
        let p100 = topk_bound(&m, 1000, 100);
        let p_all = topk_bound(&m, 1000, 1000);
        assert!(p10 <= p100);
        assert_eq!(p_all, 1.0);
    }

    #[test]
    fn topk_bound_beats_exact_bound() {
        // The Top-K event is weaker than exact DA, so its bound should not
        // be smaller for the same model (n2-K < n2 terms).
        let m = model(7.0);
        let exact = alpha_bound(&m, 1.0, 1, 1000);
        let topk = topk_bound(&m, 1000, 500);
        assert!(topk >= exact);
    }

    #[test]
    fn alpha_bound_decreases_with_population() {
        let m = model(8.0);
        let small = alpha_bound(&m, 0.5, 100, 100);
        let large = alpha_bound(&m, 0.5, 100_000, 100_000);
        assert!(small >= large);
    }

    #[test]
    fn conditions_monotone_in_n() {
        let m = model(10.0);
        // If the condition holds for large n it holds for small n.
        if full_aas_condition(&m, 10_000, 10_000) {
            assert!(full_aas_condition(&m, 100, 100));
        }
        // And a huge gap satisfies everything.
        let strong = model(1000.0);
        assert!(pairwise_aas_condition(&strong, 10_000));
        assert!(topk_aas_condition(&strong, 10_000, 10_000, 10));
        assert!(topk_alpha_aas_condition(&strong, 0.9, 10_000, 10_000, 10_000, 10));
        assert!(alpha_aas_condition(&strong, 0.9, 10_000, 10_000, 10_000));
    }

    #[test]
    fn required_gap_inverts_bound() {
        for &p in &[0.0, 0.5, 0.9, 0.99] {
            let g = required_gap_over_delta(p);
            let m = DistanceModel {
                lambda_correct: 0.0,
                lambda_incorrect: g,
                range_correct: 1.0,
                range_incorrect: 1.0,
            };
            assert!((pairwise_bound(&m) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn equal_means_panic() {
        let _ = pairwise_bound(&model(0.0));
    }
}
