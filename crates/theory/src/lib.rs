//! # dehealth-theory
//!
//! The theoretical analysis framework of Section IV: the first analytical
//! treatment of the soundness and effectiveness of online health data
//! de-anonymization.
//!
//! - [`bounds`] — Theorems 1-4 and Corollaries 1-3 as documented
//!   functions: pairwise, full-population, α-subset and Top-K
//!   re-identifiability lower bounds plus their a.a.s. conditions, all
//!   parameterized by the distance model `(λ, λ̄, θ, θ̄)`.
//! - [`mc`] — Monte-Carlo simulation of the theorems' abstraction, used to
//!   validate that the bounds hold empirically and to measure their
//!   tightness (the `repro theory` experiment).

pub mod bounds;
pub mod mc;

pub use bounds::{
    alpha_aas_condition, alpha_bound, full_aas_condition, pairwise_aas_condition, pairwise_bound,
    required_gap_over_delta, topk_aas_condition, topk_alpha_aas_condition, topk_alpha_bound,
    topk_bound, DistanceModel,
};
pub use mc::{simulate, McResult};
