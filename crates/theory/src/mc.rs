//! Monte-Carlo validation of the Section-IV bounds.
//!
//! The theorems model the attack as: de-anonymize `u` to the auxiliary
//! user minimizing a feature distance `f`, where correct pairs draw from a
//! distribution with mean `λ` (range `θ`) and incorrect pairs from one
//! with mean `λ̄` (range `θ̄`). This module simulates exactly that
//! abstraction and measures empirical success rates so the bounds can be
//! checked for validity (`empirical ≥ bound`) and tightness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bounds::DistanceModel;

/// Empirical success rates measured by [`simulate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McResult {
    /// Fraction of trials where the correct user had the minimum distance
    /// (exact DA success).
    pub exact_rate: f64,
    /// Fraction of trials where the correct user ranked in the Top-K.
    pub topk_rate: f64,
    /// Number of trials.
    pub trials: usize,
}

/// Simulate `trials` de-anonymizations of one user against `n2` auxiliary
/// users with candidate size `k`, drawing distances uniformly from the
/// model's ranges (uniform on `[λ−θ/2, λ+θ/2]`, clipped at 0).
///
/// # Panics
/// Panics if `trials == 0`, `n2 == 0` or `k > n2`.
#[must_use]
pub fn simulate(m: &DistanceModel, n2: usize, k: usize, trials: usize, seed: u64) -> McResult {
    m.validate();
    assert!(trials > 0 && n2 > 0, "need trials > 0 and n2 > 0");
    assert!(k <= n2, "K cannot exceed n2");
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng, mean: f64, range: f64| -> f64 {
        (mean + (rng.gen::<f64>() - 0.5) * range).max(0.0)
    };
    let mut exact = 0usize;
    let mut topk = 0usize;
    for _ in 0..trials {
        let correct = draw(&mut rng, m.lambda_correct, m.range_correct);
        // Rank of the correct pair among n2-1 incorrect pairs: count how
        // many incorrect draws are strictly smaller.
        let mut better = 0usize;
        for _ in 0..n2 - 1 {
            if draw(&mut rng, m.lambda_incorrect, m.range_incorrect) < correct {
                better += 1;
            }
        }
        if better == 0 {
            exact += 1;
        }
        if better < k {
            topk += 1;
        }
    }
    McResult {
        exact_rate: exact as f64 / trials as f64,
        topk_rate: topk as f64 / trials as f64,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{pairwise_bound, topk_bound};

    fn separated() -> DistanceModel {
        DistanceModel {
            lambda_correct: 1.0,
            lambda_incorrect: 5.0,
            range_correct: 2.0,
            range_incorrect: 2.0,
        }
    }

    fn overlapping() -> DistanceModel {
        DistanceModel {
            lambda_correct: 2.0,
            lambda_incorrect: 2.5,
            range_correct: 2.0,
            range_incorrect: 2.0,
        }
    }

    #[test]
    fn separated_model_always_succeeds() {
        let r = simulate(&separated(), 100, 10, 500, 1);
        assert_eq!(r.exact_rate, 1.0);
        assert_eq!(r.topk_rate, 1.0);
    }

    #[test]
    fn empirical_rate_respects_theorem_1_bound() {
        // The bound must be a valid lower bound on pairwise success; we
        // verify with n2 = 2 (one incorrect alternative).
        for m in [separated(), overlapping()] {
            let bound = pairwise_bound(&m);
            let r = simulate(&m, 2, 1, 4000, 7);
            assert!(r.exact_rate >= bound - 0.03, "empirical {} < bound {bound}", r.exact_rate);
        }
    }

    #[test]
    fn empirical_topk_respects_theorem_3_bound() {
        let m = overlapping();
        let bound = topk_bound(&m, 50, 10);
        let r = simulate(&m, 50, 10, 2000, 11);
        assert!(r.topk_rate >= bound - 0.03);
    }

    #[test]
    fn topk_rate_dominates_exact_rate() {
        let r = simulate(&overlapping(), 50, 10, 1000, 3);
        assert!(r.topk_rate >= r.exact_rate);
    }

    #[test]
    fn more_auxiliary_users_hurt() {
        let m = overlapping();
        let small = simulate(&m, 10, 1, 2000, 5);
        let large = simulate(&m, 500, 1, 2000, 5);
        assert!(small.exact_rate >= large.exact_rate);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&overlapping(), 30, 5, 500, 9);
        let b = simulate(&overlapping(), 30, 5, 500, 9);
        assert_eq!(a, b);
    }
}
