//! Drive the attack daemon over the wire: write a corpus snapshot, load
//! it into a daemon, stream an extra auxiliary cohort, attack the
//! anonymized batch, and verify the wire mapping against the in-process
//! serial `DeHealth::run` reference.
//!
//! ```text
//! cargo run --release --example attack_service [-- --users N] [--seed S] [--addr HOST:PORT] [--clients C] [--encoding json|binary] [--no-shutdown]
//! ```
//!
//! Without `--addr` the example spawns its own daemon on an ephemeral
//! local port (everything in one process, still over real TCP). With
//! `--addr` it drives an external `repro serve` daemon started from the
//! same `--users`/`--seed` (the split is regenerated deterministically,
//! so parity still holds) — the shape of the CI smoke job. With
//! `--clients C` (C ≥ 2) it additionally fires one barrier-synchronized
//! attack per client from C concurrent connections, so the daemon's
//! coalescing window gets real simultaneous load: every reply is still
//! held to bit-identical parity, and the scrape at the end must show
//! `daemon_batch_size` samples. `--encoding binary` sends the bulk
//! commands (`attack`, `add_auxiliary_users`) as length-prefixed binary
//! frames instead of JSON lines on every client — the CI smoke job runs
//! one client of each encoding against the same live daemon.

use std::time::Instant;

use de_health::core::{AttackConfig, DeHealth};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig};
use de_health::engine::EngineConfig;
use de_health::service::daemon::default_config;
use de_health::service::{AttackOptions, Daemon, PreparedCorpus, ServiceClient, WireEncoding};

fn main() {
    let mut users = 300usize;
    let mut seed = 42u64;
    let mut addr: Option<String> = None;
    let mut clients = 1usize;
    let mut encoding = WireEncoding::Json;
    let mut no_shutdown = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--users" => users = argv.next().and_then(|v| v.parse().ok()).unwrap_or(users),
            "--seed" => seed = argv.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--addr" => addr = argv.next(),
            "--clients" => {
                clients = argv.next().and_then(|v| v.parse().ok()).unwrap_or(clients).max(1);
            }
            "--encoding" => {
                encoding = match argv.next().as_deref() {
                    Some("json") => WireEncoding::Json,
                    Some("binary") => WireEncoding::Binary,
                    other => {
                        eprintln!("--encoding expects json or binary, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--no-shutdown" => no_shutdown = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    // The same deterministic split `repro snapshot` / `repro serve` use.
    println!("generating a synthetic forum with {users} users (seed {seed})…");
    let forum = Forum::generate(&ForumConfig::webmd_like(users), seed);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), seed.wrapping_add(1));
    let attack = AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() };

    // In-process reference the wire results must reproduce exactly.
    println!("running the in-process serial reference attack…");
    let reference = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);

    // A daemon to talk to: external (--addr) or spawned right here.
    let spawned = if addr.is_none() {
        println!("spawning an in-process daemon…");
        let config = EngineConfig { attack: attack.clone(), ..default_config() };
        let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind daemon");
        addr = Some(daemon.addr().to_string());
        Some(daemon)
    } else {
        None
    };
    let addr = addr.expect("an address either given or spawned");
    println!("wire encoding for bulk commands: {encoding:?}");
    let mut client = ServiceClient::connect(&addr).expect("connect to daemon");
    client.set_encoding(encoding);

    // Snapshot the prepared auxiliary corpus and load it over the wire.
    let snap_path = std::env::temp_dir().join(format!("attack-service-{users}-{seed}.snap"));
    println!("preparing + snapshotting the auxiliary corpus…");
    let t0 = Instant::now();
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack.classifier);
    let build_secs = t0.elapsed().as_secs_f64();
    corpus.save(&snap_path).expect("write snapshot");
    let loaded = client
        .load_snapshot(snap_path.to_str().expect("temp path is UTF-8"))
        .expect("load_snapshot");
    println!(
        "  cold build {build_secs:.3}s; daemon loaded {} users / {} posts in {}s",
        loaded.get("users").and_then(de_health::service::Json::as_usize).unwrap_or(0),
        loaded.get("posts").and_then(de_health::service::Json::as_usize).unwrap_or(0),
        loaded
            .get("seconds")
            .and_then(de_health::service::Json::as_f64)
            .map_or_else(|| "?".into(), |s| format!("{s:.3}")),
    );

    // Attack over the wire and check parity with the reference. The
    // options spell out the reference's parameters explicitly so an
    // external daemon's own defaults cannot skew the comparison.
    let options = AttackOptions {
        top_k: Some(attack.top_k),
        n_landmarks: Some(attack.n_landmarks),
        seed: Some(attack.seed),
        ..AttackOptions::default()
    };
    println!("attacking {} anonymized users over the wire…", split.anonymized.n_users);
    let t0 = Instant::now();
    let reply = client.attack(&split.anonymized, &options).expect("attack");
    let wire_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        reply.mapping, reference.mapping,
        "wire mapping diverged from the in-process serial attack"
    );
    assert_eq!(reply.candidates, reference.candidates, "wire candidate sets diverged");
    let mapped = reply.mapping.iter().filter(|m| m.is_some()).count();
    println!(
        "  {mapped}/{} users mapped in {wire_secs:.3}s — bit-identical to DeHealth::run ✓",
        split.anonymized.n_users
    );

    // With --clients C, hammer the daemon with C simultaneous attacks
    // from C connections. Barrier-synchronized sends land inside one
    // coalescing window, so the daemon fuses them into a shared engine
    // pass — and every demuxed reply must still match the serial
    // reference exactly.
    if clients > 1 {
        println!("firing {clients} barrier-synchronized concurrent attacks…");
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let anonymized = split.anonymized.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = ServiceClient::connect(&addr).expect("connect concurrent");
                    client.set_encoding(encoding);
                    barrier.wait();
                    client.attack(&anonymized, &options).expect("concurrent attack")
                })
            })
            .collect();
        for handle in handles {
            let reply = handle.join().expect("client thread");
            assert_eq!(
                reply.mapping, reference.mapping,
                "a coalesced concurrent reply diverged from the serial reference"
            );
            assert_eq!(reply.candidates, reference.candidates, "concurrent candidates diverged");
        }
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "  {clients} concurrent attacks in {wall:.3}s ({:.3} attacks/sec), all bit-identical ✓",
            clients as f64 / wall
        );
    }

    // Stream one more auxiliary cohort (a tiny synthetic one) and attack
    // again — the standing corpus grows without a restart.
    let extra = Forum::generate(&ForumConfig::tiny(), seed.wrapping_add(99));
    let grown = client.add_auxiliary_users(&extra).expect("add_auxiliary_users");
    println!(
        "streamed {} extra auxiliary users (corpus now {} users)",
        extra.n_users,
        grown.get("users").and_then(de_health::service::Json::as_usize).unwrap_or(0),
    );
    let reply2 = client.attack(&split.anonymized, &options).expect("attack");
    println!(
        "  re-attack on the grown corpus: {} users mapped",
        reply2.mapping.iter().filter(|m| m.is_some()).count()
    );

    let stats = client.stats().expect("stats");
    println!("daemon stats: {}", stats.emit());

    // Scrape the metric registry over the wire and hold the daemon to its
    // own telemetry: the attacks above must have left nonzero request
    // counters and attack-latency histogram samples (the CI smoke job
    // relies on these asserts firing against an external daemon too).
    let metrics = client.metrics().expect("metrics");
    let list =
        metrics.get("metrics").and_then(de_health::service::Json::as_array).expect("metrics array");
    let find = |name: &str, label: Option<(&str, &str)>| {
        list.iter().find(|m| {
            m.get("name").and_then(de_health::service::Json::as_str) == Some(name)
                && label.is_none_or(|(k, v)| {
                    m.get("labels")
                        .and_then(|l| l.get(k))
                        .and_then(de_health::service::Json::as_str)
                        == Some(v)
                })
        })
    };
    let requests = find("daemon_requests_total", None)
        .and_then(|m| m.get("value"))
        .and_then(de_health::service::Json::as_f64)
        .expect("daemon_requests_total present");
    assert!(requests >= 4.0, "request counter must cover the commands issued, got {requests}");
    let attack_hist = find("daemon_command_seconds", Some(("cmd", "attack")))
        .expect("attack latency histogram present");
    let samples = attack_hist
        .get("count")
        .and_then(de_health::service::Json::as_usize)
        .expect("histogram count");
    assert!(samples >= 2, "attack latency histogram must hold the attacks served, got {samples}");
    let p50 =
        attack_hist.get("p50").and_then(de_health::service::Json::as_f64).expect("histogram p50");
    println!(
        "daemon telemetry: {requests} requests, {samples} attack latency samples (p50 {p50:.3}s) ✓"
    );
    if clients > 1 {
        // The concurrent round must have flushed at least one batch
        // through the coalescing window (the CI smoke job asserts the
        // same metric over the Prometheus endpoint).
        let batches = find("daemon_batch_size", None)
            .and_then(|m| m.get("count"))
            .and_then(de_health::service::Json::as_usize)
            .expect("daemon_batch_size histogram present");
        assert!(batches >= 1, "concurrent attacks must flush through the batcher, got {batches}");
        println!("daemon batching: {batches} batch(es) flushed for the concurrent round ✓");
    }

    // --no-shutdown leaves the daemon serving (so an external harness —
    // the CI smoke job — can scrape its Prometheus endpoint after this
    // load and stop it itself).
    if no_shutdown {
        println!("leaving the daemon running (--no-shutdown)");
    } else {
        client.shutdown().expect("shutdown");
        if let Some(daemon) = spawned {
            daemon.join();
            println!("daemon shut down");
        }
    }
    let _ = std::fs::remove_file(&snap_path);
}
