//! Closed-world de-anonymization study: sweep the candidate-set size K and
//! compare refined-DA classifiers, reproducing the Fig. 4 reading that a
//! smaller K helps when training data are scarce.
//!
//! ```sh
//! cargo run --release --example closed_world_attack
//! ```

use de_health::core::{AttackConfig, ClassifierKind, DeHealth};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig};

fn main() {
    // 50 users with exactly 20 posts each, as in the paper's refined-DA
    // evaluation; half the posts train, half are attacked.
    let mut config = ForumConfig::webmd_like(50);
    config.fixed_posts = Some(20);
    let forum = Forum::generate(&config, 11);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 13);
    println!(
        "instance: {} auxiliary users, {} anonymized users, 10 posts/user/side",
        split.auxiliary.n_users, split.anonymized.n_users
    );

    println!("\n{:<12} {:>4} {:>10} {:>12}", "classifier", "K", "top-K hit", "DA accuracy");
    for kind in [
        ClassifierKind::Knn { k: 3 },
        ClassifierKind::Smo,
        ClassifierKind::Rlsc { lambda: 1.0 },
        ClassifierKind::Centroid,
    ] {
        for k in [5, 10, 20] {
            let attack = DeHealth::new(AttackConfig {
                top_k: k,
                n_landmarks: 5,
                classifier: kind,
                ..AttackConfig::default()
            });
            let outcome = attack.run(&split.auxiliary, &split.anonymized);
            let eval = outcome.evaluate(&split.oracle);
            println!(
                "{:<12} {:>4} {:>9.1}% {:>11.1}%",
                format!("{kind:?}").split_whitespace().next().unwrap_or("?"),
                k,
                100.0 * eval.candidate_hit_rate(),
                100.0 * eval.accuracy()
            );
        }
    }
}
