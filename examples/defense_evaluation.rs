//! Evaluate anonymization defenses against the De-Health attack — the
//! open problem the paper's Section VII poses. Shows the attack-accuracy /
//! data-utility trade-off of each defense.
//!
//! ```sh
//! cargo run --release --example defense_evaluation
//! ```

use de_health::anonymize::structure::StructurePass;
use de_health::anonymize::style::{utility, StylePass};
use de_health::anonymize::Defense;
use de_health::core::{AttackConfig, DeHealth};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig};

fn main() {
    let mut cfg = ForumConfig::webmd_like(60);
    cfg.fixed_posts = Some(10);
    cfg.mean_post_words = 60.0;
    cfg.style_strength = 0.4;
    let forum = Forum::generate(&cfg, 3);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 5);

    let defenses: Vec<(&str, Defense)> = vec![
        ("none", Defense::none()),
        (
            "lowercase everything",
            Defense { style_passes: vec![StylePass::NormalizeCase], ..Defense::none() },
        ),
        (
            "fix misspellings",
            Defense { style_passes: vec![StylePass::CorrectMisspellings], ..Defense::none() },
        ),
        ("generalize rare words", Defense { vocab_keep_top: Some(300), ..Defense::none() }),
        ("full style rewrite", Defense::full_style()),
        ("full style + unlink threads", Defense::full()),
        (
            "merge boards",
            Defense { structure: Some(StructurePass::MergeBoards), ..Defense::none() },
        ),
    ];

    println!("{:<30} {:>10} {:>9}", "defense applied to published data", "accuracy", "utility");
    for (name, defense) in defenses {
        let defended = defense.apply(&split.anonymized, 7);
        let mean_utility: f64 = split
            .anonymized
            .posts
            .iter()
            .zip(&defended.posts)
            .map(|(a, b)| utility(&a.text, &b.text))
            .sum::<f64>()
            / split.anonymized.posts.len() as f64;
        let attack =
            DeHealth::new(AttackConfig { top_k: 5, n_landmarks: 10, ..AttackConfig::default() });
        let eval = attack.run(&split.auxiliary, &defended).evaluate(&split.oracle);
        println!("{:<30} {:>9.1}% {:>8.1}%", name, 100.0 * eval.accuracy(), 100.0 * mean_utility);
    }
    println!("\nSurface rewrites barely move the needle: the relative frequencies");
    println!("of common function words survive any meaning-preserving rewrite.");
    println!("This is the paper's point — naive anonymization does not protect");
    println!("online health data.");
}
