//! The Section-VI linkage attack: connect health-forum accounts to real
//! identities via username entropy (NameLink) and avatar fingerprints
//! (AvatarLink), then aggregate identity profiles.
//!
//! ```sh
//! cargo run --release --example linkage_attack
//! ```

use de_health::linkage::{
    run_linkage_attack, AvatarLinkConfig, LinkageReport, NameLinkConfig, World, WorldConfig,
};

fn main() {
    // A world scaled to the paper's 2805 avatar-filtered WebMD targets.
    let world = World::generate(&WorldConfig { n_people: 2805, ..WorldConfig::default() }, 99);
    let report =
        run_linkage_attack(&world, &NameLinkConfig::default(), &AvatarLinkConfig::default());

    println!("forum users:          {}", world.health_forum.len());
    println!("avatar targets:       {}", report.n_avatar_targets);
    println!(
        "NameLink links:       {} users (precision {:.1}%)",
        report.n_name_linked(),
        100.0 * LinkageReport::precision(&report.name_links)
    );
    println!(
        "AvatarLink links:     {} users ({:.1}% of targets; paper: 12.4%)",
        report.n_avatar_linked(),
        100.0 * report.n_avatar_linked() as f64 / report.n_avatar_targets as f64
    );
    println!("linked by both tools: {}", report.n_overlap);

    // Show a few recovered identity profiles (all synthetic people).
    println!("\nsample recovered profiles:");
    let mut shown = 0;
    let mut ids: Vec<&usize> = report.profiles.keys().collect();
    ids.sort_unstable();
    for fa in ids {
        let p = &report.profiles[fa];
        if let (Some(name), Some(cond)) = (&p.full_name, p.condition) {
            println!(
                "  forum user {:>5} -> {name} (born {}), condition: {cond}{}{}",
                fa,
                p.birth_year.unwrap_or(0),
                p.phone.as_deref().map(|ph| format!(", phone {ph}")).unwrap_or_default(),
                if p.sensitive { "  [SENSITIVE]" } else { "" }
            );
            shown += 1;
            if shown == 8 {
                break;
            }
        }
    }
    println!("\nEvery profile above is synthetic; the pipeline demonstrates how");
    println!("public usernames and avatars compromise health-data anonymity.");
}
