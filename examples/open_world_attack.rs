//! Open-world de-anonymization: some anonymized users have no true mapping
//! in the auxiliary data, so the attack must also decide `u → ⊥`.
//! Demonstrates the mean-verification scheme's accuracy/FP trade-off.
//!
//! ```sh
//! cargo run --release --example open_world_attack
//! ```

use de_health::core::{AttackConfig, DeHealth, Verification};
use de_health::corpus::split::open_world_split;
use de_health::corpus::{Forum, ForumConfig};

fn main() {
    let mut config = ForumConfig::webmd_like(80);
    config.fixed_posts = Some(20);
    let forum = Forum::generate(&config, 29);
    // 50% of users exist on both sides; the rest are exclusive to one side.
    let split = open_world_split(&forum, 0.5, 31);
    println!(
        "instance: {} anonymized users, {} with a true mapping",
        split.anonymized.n_users,
        split.oracle.n_overlapping()
    );

    println!("\n{:<28} {:>10} {:>9}", "verification", "accuracy", "FP rate");
    for (label, verification) in [
        ("none (closed-world attack)", Verification::None),
        ("mean-verification r=0.10", Verification::Mean { r: 0.10 }),
        ("mean-verification r=0.25", Verification::Mean { r: 0.25 }),
        ("mean-verification r=0.50", Verification::Mean { r: 0.50 }),
        ("false addition (K'=5)", Verification::FalseAddition { n_false: 5 }),
    ] {
        let attack = DeHealth::new(AttackConfig {
            top_k: 5,
            n_landmarks: 5,
            verification,
            ..AttackConfig::default()
        });
        let outcome = attack.run(&split.auxiliary, &split.anonymized);
        let eval = outcome.evaluate(&split.oracle);
        println!(
            "{:<28} {:>9.1}% {:>8.1}%",
            label,
            100.0 * eval.accuracy(),
            100.0 * eval.fp_rate()
        );
    }
    println!("\nStronger verification trades accuracy on present users for");
    println!("fewer false identifications of absent users (paper, Fig. 6).");
}
