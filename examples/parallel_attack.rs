//! Run the De-Health attack through the parallel sharded execution
//! engine, including an incremental auxiliary ingest, and print the
//! per-stage throughput report.
//!
//! ```text
//! cargo run --release --example parallel_attack [n_users] [n_threads]
//! ```

use de_health::core::AttackConfig;
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig, Post};
use de_health::engine::{Engine, EngineConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_users: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let n_threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);

    println!("generating a synthetic forum with {n_users} users…");
    let forum = Forum::generate(&ForumConfig::webmd_like(n_users), 42);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), 7);
    println!(
        "  auxiliary: {} posts, anonymized: {} users / {} posts",
        split.auxiliary.posts.len(),
        split.anonymized.n_users,
        split.anonymized.posts.len()
    );

    let attack = AttackConfig { top_k: 10, n_landmarks: 30, ..AttackConfig::default() };
    // The defaults are the fast paths: ScoringMode::Indexed (inverted-index
    // Top-K scoring with upper-bound pruning) and RefinedMode::Shared
    // (materialize-once feature arenas + the sparse KNN kernel). The
    // differential-test oracles remain one config flag away — pass
    // `scoring: ScoringMode::Dense` to force the all-pairs sweep, or
    // `refined: RefinedMode::PerUser` for the from-scratch refined loop;
    // both produce bit-identical candidates and mappings.
    let engine =
        Engine::new(EngineConfig { attack, n_threads, block_size: 32, ..EngineConfig::default() });

    // One-shot parallel attack.
    let outcome = engine.run(&split.auxiliary, &split.anonymized);
    let correct = (0..split.anonymized.n_users)
        .filter(|&u| {
            outcome.mapping[u].is_some() && outcome.mapping[u] == split.oracle.true_mapping(u)
        })
        .count();
    println!(
        "\nrefined DA: {correct}/{} correct ({:.1}%)",
        split.anonymized.n_users,
        100.0 * correct as f64 / split.anonymized.n_users.max(1) as f64
    );
    println!("\n{}", outcome.report);

    // Streaming scenario: the auxiliary data arrives as two user cohorts.
    let cut = split.auxiliary.n_users / 2;
    let chunk = |lo: usize, hi: usize| {
        let posts: Vec<Post> = split
            .auxiliary
            .posts
            .iter()
            .filter(|p| (lo..hi).contains(&p.author))
            .map(|p| Post { author: p.author - lo, thread: p.thread, text: p.text.clone() })
            .collect();
        Forum::from_posts(hi - lo, split.auxiliary.n_threads, posts)
    };
    let mut session = engine.session(&split.anonymized);
    session.add_auxiliary_users(&chunk(0, cut));
    println!(
        "\nincremental session after first cohort: {} auxiliary users ingested",
        session.n_auxiliary_users()
    );
    session.add_auxiliary_users(&chunk(cut, split.auxiliary.n_users));
    let streamed = session.finish();
    println!(
        "incremental session after second cohort: {} users mapped",
        streamed.mapping.iter().filter(|m| m.is_some()).count()
    );
    println!("\n{}", streamed.report);
}
