//! Quickstart: generate a small synthetic health forum, split it into
//! auxiliary/anonymized halves, run the De-Health attack, and score it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use de_health::core::{AttackConfig, DeHealth};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig};

fn main() {
    // 1. A 120-user WebMD-like forum (deterministic seed).
    let forum = Forum::generate(&ForumConfig::webmd_like(120), 42);
    println!(
        "forum: {} users, {} posts, {} threads (mean {:.1} words/post)",
        forum.n_users,
        forum.posts.len(),
        forum.n_threads,
        forum.mean_post_words()
    );

    // 2. Closed-world split: 50% of each user's posts are auxiliary
    //    (known), the rest are anonymized with shuffled ids.
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
    println!(
        "split: {} auxiliary posts, {} anonymized users",
        split.auxiliary.posts.len(),
        split.anonymized.n_users
    );

    // 3. Run De-Health with the paper's default weights (c = 0.05, 0.05,
    //    0.9) and a Top-10 candidate phase.
    let attack = DeHealth::new(AttackConfig { top_k: 10, ..AttackConfig::default() });
    let outcome = attack.run(&split.auxiliary, &split.anonymized);

    // 4. Score against the hidden ground truth.
    let eval = outcome.evaluate(&split.oracle);
    println!("top-1  candidate rate: {:.1}%", 100.0 * eval.top_k_success_rate(1));
    println!("top-10 candidate rate: {:.1}%", 100.0 * eval.top_k_success_rate(10));
    println!("refined DA accuracy:   {:.1}%", 100.0 * eval.accuracy());
    println!(
        "DA space reduction:    {} -> {} candidates per user",
        split.auxiliary.n_users,
        attack.config().top_k
    );
}
