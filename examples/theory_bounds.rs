//! Explore the Section-IV re-identifiability theory: how large must the
//! separation between correct-pair and incorrect-pair feature distances be
//! before de-anonymization is guaranteed?
//!
//! ```sh
//! cargo run --release --example theory_bounds
//! ```

use de_health::theory::{
    alpha_bound, pairwise_bound, required_gap_over_delta, simulate, topk_bound, DistanceModel,
};

fn model(gap: f64) -> DistanceModel {
    DistanceModel {
        lambda_correct: 2.0,
        lambda_incorrect: 2.0 + gap,
        range_correct: 1.0,
        range_incorrect: 1.0,
    }
}

fn main() {
    println!("required separation |λ-λ̄|/δ for target success probabilities (Theorem 1):");
    for p in [0.5, 0.9, 0.99, 0.999] {
        println!("  P >= {p:<6} needs gap/δ >= {:.2}", required_gap_over_delta(p));
    }

    println!("\nbounds vs Monte-Carlo (n2 = 200 auxiliary users, K = 20):");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "gap/δ", "T1 bound", "T3 bound", "α=1 bound", "exact (mc)", "top-20 (mc)"
    );
    for gap in [1.0, 2.0, 3.0, 4.0, 5.0, 7.0] {
        let m = model(gap);
        let mc = simulate(&m, 200, 20, 3000, 1);
        println!(
            "{:>6.1} {:>10.4} {:>10.4} {:>12.4} {:>12.4} {:>14.4}",
            gap,
            pairwise_bound(&m),
            topk_bound(&m, 200, 20),
            alpha_bound(&m, 1.0, 200, 200),
            mc.exact_rate,
            mc.topk_rate
        );
    }

    println!("\nReading: the Chernoff-style bounds are conservative (empirical");
    println!("success is far above them), but their *ordering* is informative:");
    println!("Top-K DA needs a much smaller feature gap than exact DA, which is");
    println!("why De-Health's two-phase design works (Sections III-IV).");
}
