//! # De-Health
//!
//! A from-scratch Rust reproduction of *"De-Health: All Your Online Health
//! Information Are Belong to Us"* (Ji et al., ICDE 2020).
//!
//! De-Health is a two-phase user-level de-anonymization (DA) attack on
//! online health-forum data:
//!
//! 1. **Top-K DA** — build a User-Data-Attribute (UDA) graph from thread
//!    co-discussion relations and binary stylometric attributes, compute a
//!    structural similarity between every anonymized and auxiliary user,
//!    and select a Top-K candidate set per anonymized user.
//! 2. **Refined DA** — train a per-user classifier (KNN / SMO-SVM / RLSC)
//!    on stylometric + structural features over the candidate set and map
//!    each anonymized user to one candidate (or reject it as absent).
//!
//! This facade crate re-exports the workspace members; see each crate for
//! detailed documentation:
//!
//! - [`text`] — NLP substrate (tokenizer, POS tagger, lexicons).
//! - [`corpus`] — synthetic health-forum generator and dataset splits
//!   (substitute for the paper's WebMD / HealthBoards crawls).
//! - [`stylometry`] — Table-I stylometric feature extraction.
//! - [`graph`] — correlation / UDA graphs, communities, bipartite matching.
//! - [`mapped`] — read-only file mapping (raw `mmap`) and
//!   alignment-checked little-endian slice casts: the confined-`unsafe`
//!   shim behind zero-copy snapshot loading.
//! - [`ml`] — benchmark classifiers (KNN, SMO-SVM, RLSC, nearest-centroid).
//! - [`core`] — the De-Health attack itself plus the Stylometry baseline.
//! - [`engine`] — the parallel sharded execution engine: blockwise Top-K
//!   DA over bounded candidate heaps (no dense similarity matrix),
//!   fan-out Refined DA, and incremental auxiliary ingestion.
//! - [`service`] — the serving layer: persistent corpus snapshots and the
//!   long-lived attack daemon (newline-delimited JSON over TCP).
//! - [`telemetry`] — in-tree observability: lock-free counters/gauges,
//!   log-bucketed latency histograms, a named-metric registry with
//!   Prometheus text exposition, and the structured-logging facade.
//! - [`theory`] — re-identifiability bounds (Theorems 1-4) and Monte-Carlo
//!   validation.
//! - [`linkage`] — the NameLink / AvatarLink linkage-attack simulation.
//! - [`anonymize`] — style-obfuscation and structure-unlinking defenses
//!   (the paper's Section-VII future work), for measuring attack
//!   degradation.
//!
//! ## Quickstart
//!
//! ```
//! use de_health::corpus::{ForumConfig, Forum};
//! use de_health::corpus::split::{closed_world_split, SplitConfig};
//! use de_health::core::{AttackConfig, DeHealth};
//!
//! // Generate a small synthetic forum and run a closed-world attack.
//! let forum = Forum::generate(&ForumConfig::tiny(), 42);
//! let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
//! let attack = DeHealth::new(AttackConfig::default());
//! let outcome = attack.run(&split.auxiliary, &split.anonymized);
//! let eval = outcome.evaluate(&split.oracle);
//! assert!(eval.top_k_success_rate(outcome.config().top_k) >= 0.0);
//! ```

pub use dehealth_anonymize as anonymize;
pub use dehealth_core as core;
pub use dehealth_corpus as corpus;
pub use dehealth_engine as engine;
pub use dehealth_graph as graph;
pub use dehealth_linkage as linkage;
pub use dehealth_mapped as mapped;
pub use dehealth_ml as ml;
pub use dehealth_service as service;
pub use dehealth_stylometry as stylometry;
pub use dehealth_telemetry as telemetry;
pub use dehealth_text as text;
pub use dehealth_theory as theory;
