//! Cross-crate integration tests: the full De-Health pipeline on seeded
//! simulated forums, asserting the paper's qualitative claims.

use de_health::core::{AttackConfig, ClassifierKind, DeHealth, Selection};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig};

fn tiny_forum(seed: u64) -> Forum {
    let mut cfg = ForumConfig::webmd_like(40);
    cfg.mean_post_words = 50.0;
    Forum::generate(&cfg, seed)
}

#[test]
fn closed_world_attack_beats_chance() {
    let forum = tiny_forum(1);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 2);
    let attack =
        DeHealth::new(AttackConfig { top_k: 5, n_landmarks: 8, ..AttackConfig::default() });
    let outcome = attack.run(&split.auxiliary, &split.anonymized);
    let eval = outcome.evaluate(&split.oracle);
    // Chance for Top-5 of ~40 users is 12.5%; require a clear margin.
    assert!(eval.top_k_success_rate(5) > 0.4, "top-5 = {}", eval.top_k_success_rate(5));
    assert!(eval.accuracy() > 0.3, "accuracy = {}", eval.accuracy());
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let forum = tiny_forum(3);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 4);
    let attack =
        DeHealth::new(AttackConfig { top_k: 5, n_landmarks: 8, ..AttackConfig::default() });
    let a = attack.run(&split.auxiliary, &split.anonymized);
    let b = attack.run(&split.auxiliary, &split.anonymized);
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.candidates, b.candidates);
}

#[test]
fn evaluation_invariants_hold() {
    let forum = tiny_forum(5);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.7), 6);
    let attack =
        DeHealth::new(AttackConfig { top_k: 5, n_landmarks: 8, ..AttackConfig::default() });
    let outcome = attack.run(&split.auxiliary, &split.anonymized);
    let eval = outcome.evaluate(&split.oracle);
    // Counts are consistent.
    assert_eq!(eval.truth_rank.len(), split.anonymized.n_users);
    assert!(eval.correct <= eval.candidate_hits);
    assert!(eval.candidate_hits <= eval.n_overlapping);
    assert!(eval.mapped <= split.anonymized.n_users);
    // Rates are probabilities and monotone in K.
    assert!(eval.top_k_success_rate(1) <= eval.top_k_success_rate(10));
    assert!((0.0..=1.0).contains(&eval.accuracy()));
    assert!((0.0..=1.0).contains(&eval.candidate_hit_rate()));
}

#[test]
fn graph_matching_selection_also_works() {
    let forum = tiny_forum(7);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 8);
    let attack = DeHealth::new(AttackConfig {
        top_k: 5,
        n_landmarks: 8,
        selection: Selection::GraphMatching,
        ..AttackConfig::default()
    });
    let outcome = attack.run(&split.auxiliary, &split.anonymized);
    let eval = outcome.evaluate(&split.oracle);
    assert!(eval.candidate_hit_rate() > 0.3, "hit rate = {}", eval.candidate_hit_rate());
    // Every candidate set respects K.
    assert!(outcome.candidates.iter().all(|c| c.len() <= 5));
}

#[test]
fn all_classifier_backends_run_the_full_pipeline() {
    let forum = tiny_forum(9);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 10);
    for classifier in [
        ClassifierKind::Knn { k: 3 },
        ClassifierKind::Centroid,
        ClassifierKind::Rlsc { lambda: 1.0 },
    ] {
        let attack = DeHealth::new(AttackConfig {
            top_k: 3,
            n_landmarks: 5,
            classifier,
            ..AttackConfig::default()
        });
        let outcome = attack.run(&split.auxiliary, &split.anonymized);
        let eval = outcome.evaluate(&split.oracle);
        assert!(eval.accuracy() > 0.15, "{classifier:?} accuracy = {}", eval.accuracy());
    }
}
