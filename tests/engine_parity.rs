//! Parity of the parallel sharded engine with the serial attack.
//!
//! `dehealth-engine` must produce **bit-identical** candidate sets and
//! final mappings to `DeHealth::run` (direct selection) at any worker
//! count — the sharding, bounded Top-K heaps, and refined-DA fan-out are
//! pure execution-strategy changes, not semantic ones. This suite pins
//! that contract at 1, 2 and 8 worker threads on a seeded tiny forum, in
//! closed and open world, across verification schemes, and under
//! Algorithm-2 filtering.

use de_health::core::{AttackConfig, ClassifierKind, DeHealth, FilterConfig, Verification};
use de_health::corpus::split::{closed_world_split, open_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig, Split};
use de_health::engine::{Engine, EngineConfig, ScoringMode};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn tiny_closed() -> Split {
    let forum = Forum::generate(&ForumConfig::tiny(), 42);
    closed_world_split(&forum, &SplitConfig::fraction(0.5), 7)
}

fn assert_parity(split: &Split, attack: AttackConfig) {
    let serial = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);
    for n_threads in THREAD_COUNTS {
        for block_size in [4, 64] {
            for scoring in [ScoringMode::Indexed, ScoringMode::Dense] {
                let engine = Engine::new(EngineConfig {
                    attack: attack.clone(),
                    n_threads,
                    block_size,
                    scoring,
                    ..EngineConfig::default()
                });
                let out = engine.run(&split.auxiliary, &split.anonymized);
                assert_eq!(
                    out.candidates, serial.candidates,
                    "candidate sets diverge at {n_threads} threads, block size {block_size}, \
                     {scoring:?}"
                );
                assert_eq!(
                    out.mapping, serial.mapping,
                    "mapping diverges at {n_threads} threads, block size {block_size}, {scoring:?}"
                );
                // The sparse candidate scores are bitwise equal to the
                // serial attack's dense matrix entries.
                for (u, entries) in out.candidate_scores.iter().enumerate() {
                    for &(v, s) in entries {
                        assert_eq!(
                            s.to_bits(),
                            serial.similarity[u][v].to_bits(),
                            "score bits diverge for pair ({u}, {v}) at {n_threads} threads"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn closed_world_default_classifier() {
    let split = tiny_closed();
    assert_parity(&split, AttackConfig { top_k: 5, n_landmarks: 10, ..AttackConfig::default() });
}

#[test]
fn closed_world_with_filtering() {
    let split = tiny_closed();
    assert_parity(
        &split,
        AttackConfig {
            top_k: 5,
            n_landmarks: 10,
            filtering: Some(FilterConfig::default()),
            ..AttackConfig::default()
        },
    );
}

#[test]
fn closed_world_centroid_classifier() {
    let split = tiny_closed();
    assert_parity(
        &split,
        AttackConfig {
            top_k: 3,
            n_landmarks: 10,
            classifier: ClassifierKind::Centroid,
            ..AttackConfig::default()
        },
    );
}

#[test]
fn open_world_mean_verification() {
    let forum = Forum::generate(&ForumConfig::tiny(), 11);
    let split = open_world_split(&forum, 0.7, 5);
    assert_parity(
        &split,
        AttackConfig {
            top_k: 5,
            n_landmarks: 10,
            verification: Verification::Mean { r: 0.1 },
            ..AttackConfig::default()
        },
    );
}

#[test]
fn open_world_false_addition() {
    let forum = Forum::generate(&ForumConfig::tiny(), 13);
    let split = open_world_split(&forum, 0.5, 2);
    assert_parity(
        &split,
        AttackConfig {
            top_k: 4,
            n_landmarks: 10,
            verification: Verification::FalseAddition { n_false: 3 },
            ..AttackConfig::default()
        },
    );
}

#[test]
fn engine_evaluation_matches_serial_quality() {
    // Identical mappings must give identical headline metrics too (the
    // engine outcome plugged into the same oracle scoring).
    let split = tiny_closed();
    let attack = AttackConfig { top_k: 5, n_landmarks: 10, ..AttackConfig::default() };
    let serial = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);
    let eval = serial.evaluate(&split.oracle);
    let engine =
        Engine::new(EngineConfig { attack, n_threads: 8, block_size: 16, ..Default::default() });
    let out = engine.run(&split.auxiliary, &split.anonymized);
    let correct = (0..split.anonymized.n_users)
        .filter(|&u| out.mapping[u].is_some() && out.mapping[u] == split.oracle.true_mapping(u))
        .count();
    assert_eq!(correct, eval.correct);
    assert!(eval.accuracy() > 0.2, "attack should beat chance: {}", eval.accuracy());
}
