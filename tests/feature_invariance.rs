//! Soundness properties the attack silently relies on: stylometric
//! features and UDA attributes are functions of the *text*, not of the
//! user labels, so anonymization (relabeling) must not change them.

use de_health::core::uda::UdaGraph;
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig, Post};
use de_health::stylometry::extract;

#[test]
fn features_are_label_invariant() {
    // The same posts under different author ids yield identical per-user
    // attribute sets (up to the relabeling).
    let posts = vec![
        Post { author: 0, thread: 0, text: "I realy think the dose of 40 mg is high!".into() },
        Post { author: 1, thread: 0, text: "rest and water help the most.".into() },
    ];
    let forum_a = Forum::from_posts(2, 1, posts.clone());
    let relabeled: Vec<Post> = posts
        .iter()
        .map(|p| Post { author: 1 - p.author, thread: p.thread, text: p.text.clone() })
        .collect();
    let forum_b = Forum::from_posts(2, 1, relabeled);
    let uda_a = UdaGraph::build(&forum_a);
    let uda_b = UdaGraph::build(&forum_b);
    assert_eq!(uda_a.attributes[0], uda_b.attributes[1]);
    assert_eq!(uda_a.attributes[1], uda_b.attributes[0]);
    assert_eq!(uda_a.profiles[0], uda_b.profiles[1]);
}

#[test]
fn oracle_mapping_preserves_posts_verbatim() {
    // Every anonymized post's text exists verbatim in the original forum
    // under the oracle-mapped author.
    let forum = Forum::generate(&ForumConfig::tiny(), 17);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.6), 18);
    for anon in 0..split.anonymized.n_users {
        let original = split.oracle.true_mapping(anon).expect("closed world");
        let original_texts: std::collections::HashSet<&str> =
            forum.user_posts(original).iter().map(|&i| forum.posts[i].text.as_str()).collect();
        for &i in split.anonymized.user_posts(anon) {
            assert!(
                original_texts.contains(split.anonymized.posts[i].text.as_str()),
                "anonymized post not from the mapped original user"
            );
        }
    }
}

#[test]
fn extraction_matches_between_split_halves() {
    // Feature extraction is a pure function of text: re-extracting the
    // anonymized copy of a post equals extracting the original.
    let forum = Forum::generate(&ForumConfig::tiny(), 23);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 24);
    let post = &split.anonymized.posts[0];
    let original = forum
        .posts
        .iter()
        .find(|p| p.text == post.text)
        .expect("anonymized post text exists in the source forum");
    assert_eq!(extract(&post.text), extract(&original.text));
}

#[test]
fn parallel_feature_extraction_matches_serial() {
    use de_health::core::uda::extract_post_features;
    let forum = Forum::generate(&ForumConfig::webmd_like(80), 29);
    let parallel = extract_post_features(&forum);
    assert_eq!(parallel.len(), forum.posts.len());
    for (i, p) in forum.posts.iter().enumerate().step_by(37) {
        assert_eq!(parallel[i], extract(&p.text), "post {i} differs");
    }
}
