//! Golden end-to-end regression pin.
//!
//! Runs the full fixed-seed pipeline (synthetic forum → split → Top-K DA
//! → Refined DA → evaluation) and compares the headline attack-quality
//! metrics against the committed fixture
//! `tests/fixtures/golden_pipeline.txt`. Every stage is deterministic
//! (seeded generation, tie-broken selection, bit-exact parallel scoring),
//! so the comparison is *exact*: any future performance work that
//! silently degrades attack accuracy — or shifts a single similarity
//! bit — fails this test instead of slipping through.
//!
//! If a change intentionally alters attack quality, regenerate the
//! fixture by running the test with `GOLDEN_REGENERATE=1` and commit the
//! diff (the test output explains this on mismatch).

use std::fmt::Write as _;

use de_health::core::{AttackConfig, DeHealth};
use de_health::corpus::split::{closed_world_split, open_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig, Split};
use de_health::engine::{Engine, EngineConfig};

const FIXTURE: &str = "tests/fixtures/golden_pipeline.txt";

fn attack_cfg() -> AttackConfig {
    AttackConfig { top_k: 5, n_landmarks: 10, ..AttackConfig::default() }
}

fn scenario(name: &str, split: &Split, out: &mut String) {
    let serial = DeHealth::new(attack_cfg()).run(&split.auxiliary, &split.anonymized);
    // The engine (indexed scoring, parallel) must reproduce the serial
    // pipeline exactly — the golden numbers pin both at once.
    let engine = Engine::new(EngineConfig {
        attack: attack_cfg(),
        n_threads: 2,
        block_size: 8,
        ..EngineConfig::default()
    });
    let engine_out = engine.run(&split.auxiliary, &split.anonymized);
    assert_eq!(engine_out.candidates, serial.candidates, "{name}: engine diverges from serial");
    assert_eq!(engine_out.mapping, serial.mapping, "{name}: engine diverges from serial");

    let eval = serial.evaluate(&split.oracle);
    let _ = writeln!(out, "[{name}]");
    let _ = writeln!(out, "n_overlapping={}", eval.n_overlapping);
    let _ = writeln!(out, "top1_rate={:.6}", eval.top_k_success_rate(1));
    let _ = writeln!(out, "top5_rate={:.6}", eval.top_k_success_rate(5));
    let _ = writeln!(out, "candidate_hit_rate={:.6}", eval.candidate_hit_rate());
    let _ = writeln!(out, "accuracy={:.6}", eval.accuracy());
    let _ = writeln!(out, "mapped={}", eval.mapped);
    let _ = writeln!(out, "fp_rate={:.6}", eval.fp_rate());
}

#[test]
fn pipeline_metrics_match_the_committed_fixture() {
    let mut actual = String::new();

    let forum = Forum::generate(&ForumConfig::tiny(), 42);
    let closed = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
    scenario("closed_world", &closed, &mut actual);

    let forum = Forum::generate(&ForumConfig::tiny(), 11);
    let open = open_world_split(&forum, 0.7, 5);
    scenario("open_world", &open, &mut actual);

    if std::env::var_os("GOLDEN_REGENERATE").is_some() {
        std::fs::write(FIXTURE, &actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("missing tests/fixtures/golden_pipeline.txt — run with GOLDEN_REGENERATE=1");
    assert_eq!(
        actual, expected,
        "pipeline metrics drifted from the golden fixture.\n\
         If this change is intentional, regenerate with:\n\
         GOLDEN_REGENERATE=1 cargo test --test golden_regression\n\
         and commit the fixture diff."
    );
}
