//! Differential harness: inverted-index sparse scoring vs the dense
//! all-pairs oracle.
//!
//! The `IndexedScorer` path (`ScoringMode::Indexed`, the engine default)
//! must be a pure execution-strategy change: candidate sets, candidate
//! score *bits*, and final Refined-DA mappings identical to both the
//! dense engine path (`ScoringMode::Dense`) and the serial
//! `DeHealth::run` — across seeded random forums of varying vocabulary
//! density (dense vocabularies make every pair share attributes; sparse
//! ones exercise the zero-intersection path), users with 0/1/many posts
//! (0-post users are *absent* and must never surface as candidates), at
//! 1/2/8 worker threads, and across incremental
//! `add_auxiliary_users` batches.

use de_health::core::{AttackConfig, DeHealth, FilterConfig, SimilarityWeights};
use de_health::corpus::{Forum, Post};
use de_health::engine::{Engine, EngineConfig, EngineOutcome, ScoringMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Vocabulary banks of decreasing density: the small bank makes every
/// user share most attributes; the synthetic bank spreads users over
/// many rare letter patterns.
fn word_bank(density: usize) -> Vec<String> {
    match density {
        0 => ["the", "pain", "doctor", "rest", "i", "have", "a", "bad"]
            .iter()
            .map(ToString::to_string)
            .collect(),
        1 => (0..60).map(|i| format!("word{i}")).collect(),
        _ => (0..400).map(|i| format!("w{}x{}q{}", i, i * 7 % 13, i % 5)).collect(),
    }
}

/// A seeded random forum: `n_users` users whose post counts cycle through
/// 0 (absent), 1 and many, with density-controlled vocabulary, sprinkled
/// punctuation/digits/misspellings, and one empty post (a present user
/// with zero attributes).
fn random_forum(seed: u64, n_users: usize, n_threads: usize, density: usize) -> Forum {
    let mut rng = StdRng::seed_from_u64(seed);
    let bank = word_bank(density);
    let misspellings = ["realy", "migrane", "definately", "recieve"];
    let post_counts = [0usize, 1, 3, 2, 0, 7, 1, 4];
    let mut posts = Vec::new();
    for u in 0..n_users {
        let n_posts = post_counts[u % post_counts.len()];
        for k in 0..n_posts {
            if u == 2 && k == 0 {
                // A present user whose first post has no extractable
                // features at all.
                posts.push(Post { author: u, thread: 0, text: String::new() });
                continue;
            }
            let len = 1 + rng.gen_range(0..12);
            let mut words: Vec<String> =
                (0..len).map(|_| bank[rng.gen_range(0..bank.len())].clone()).collect();
            if rng.gen::<f64>() < 0.3 {
                words.push(rng.gen_range(1..500u32).to_string());
            }
            if rng.gen::<f64>() < 0.3 {
                words.push(misspellings[rng.gen_range(0..misspellings.len())].to_string());
            }
            let punct = ['.', '!', '?'][rng.gen_range(0..3usize)];
            posts.push(Post {
                author: u,
                thread: rng.gen_range(0..n_threads),
                text: format!("{}{}", words.join(" "), punct),
            });
        }
    }
    Forum::from_posts(n_users, n_threads, posts)
}

fn attack_cfg() -> AttackConfig {
    AttackConfig { top_k: 4, n_landmarks: 6, ..AttackConfig::default() }
}

fn engine(attack: AttackConfig, n_threads: usize, scoring: ScoringMode) -> Engine {
    Engine::new(EngineConfig {
        attack,
        n_threads,
        block_size: 4,
        scoring,
        ..EngineConfig::default()
    })
}

fn assert_outcomes_identical(a: &EngineOutcome, b: &EngineOutcome, what: &str) {
    assert_eq!(a.candidates, b.candidates, "candidate sets diverge: {what}");
    assert_eq!(a.mapping, b.mapping, "mappings diverge: {what}");
    assert_eq!(a.candidate_scores.len(), b.candidate_scores.len());
    for (u, (ea, eb)) in a.candidate_scores.iter().zip(&b.candidate_scores).enumerate() {
        assert_eq!(ea.len(), eb.len(), "candidate count diverges for u={u}: {what}");
        for (&(va, sa), &(vb, sb)) in ea.iter().zip(eb) {
            assert_eq!(va, vb, "candidate diverges for u={u}: {what}");
            assert_eq!(sa.to_bits(), sb.to_bits(), "score bits diverge for u={u}: {what}");
        }
    }
}

fn absent_users(forum: &Forum) -> Vec<usize> {
    (0..forum.n_users).filter(|&u| forum.user_posts(u).is_empty()).collect()
}

#[test]
fn indexed_matches_dense_and_serial_across_densities_and_threads() {
    for density in 0..3 {
        let aux = random_forum(100 + density as u64, 14, 3, density);
        let anon = random_forum(200 + density as u64, 10, 3, density);
        let serial = DeHealth::new(attack_cfg()).run(&aux, &anon);
        for &n_threads in &THREAD_COUNTS {
            let indexed = engine(attack_cfg(), n_threads, ScoringMode::Indexed).run(&aux, &anon);
            let dense = engine(attack_cfg(), n_threads, ScoringMode::Dense).run(&aux, &anon);
            let what = format!("density {density}, {n_threads} threads");
            assert_outcomes_identical(&indexed, &dense, &what);
            assert_eq!(indexed.candidates, serial.candidates, "serial diverges: {what}");
            assert_eq!(indexed.mapping, serial.mapping, "serial diverges: {what}");
            for (u, entries) in indexed.candidate_scores.iter().enumerate() {
                for &(v, s) in entries {
                    assert_eq!(
                        s.to_bits(),
                        serial.similarity[u][v].to_bits(),
                        "score bits diverge from serial matrix for ({u}, {v}): {what}"
                    );
                }
            }
        }
    }
}

#[test]
fn absent_auxiliary_users_never_appear_as_candidates() {
    for density in 0..3 {
        let aux = random_forum(300 + density as u64, 16, 3, density);
        let anon = random_forum(400 + density as u64, 8, 3, density);
        let absent = absent_users(&aux);
        assert!(!absent.is_empty(), "harness must generate absent users");
        let serial = DeHealth::new(attack_cfg()).run(&aux, &anon);
        let indexed = engine(attack_cfg(), 2, ScoringMode::Indexed).run(&aux, &anon);
        let dense = engine(attack_cfg(), 2, ScoringMode::Dense).run(&aux, &anon);
        for (name, candidates, mapping) in [
            ("serial", &serial.candidates, &serial.mapping),
            ("indexed", &indexed.candidates, &indexed.mapping),
            ("dense", &dense.candidates, &dense.mapping),
        ] {
            for &a in &absent {
                assert!(
                    candidates.iter().all(|c| !c.contains(&a)),
                    "absent aux user {a} appears in {name} candidates"
                );
                assert!(
                    mapping.iter().all(|&m| m != Some(a)),
                    "absent aux user {a} appears in {name} mapping"
                );
            }
        }
    }
}

/// Split a forum into per-user-cohort chunks the way a streaming session
/// ingests them (chunk-local user ids, chunk-owned thread space).
fn cohort_chunks(forum: &Forum, n_chunks: usize) -> Vec<Forum> {
    let per = forum.n_users.div_ceil(n_chunks);
    (0..n_chunks)
        .map(|c| {
            let lo = c * per;
            let hi = ((c + 1) * per).min(forum.n_users);
            let posts: Vec<Post> = forum
                .posts
                .iter()
                .filter(|p| (lo..hi).contains(&p.author))
                .map(|p| Post { author: p.author - lo, thread: p.thread, text: p.text.clone() })
                .collect();
            Forum::from_posts(hi - lo, forum.n_threads, posts)
        })
        .collect()
}

#[test]
fn incremental_batches_stay_bit_identical_to_dense_sessions() {
    // Chunked ingestion computes per-chunk structural similarities, so the
    // reference here is a *dense-mode session fed the same chunks* — the
    // indexed index grows incrementally (appended postings, suffix
    // probing) and must not change a single bit, at any thread count.
    for density in 0..3 {
        let aux = random_forum(500 + density as u64, 15, 3, density);
        let anon = random_forum(600 + density as u64, 9, 3, density);
        let chunks = cohort_chunks(&aux, 3);
        for &n_threads in &THREAD_COUNTS {
            let run_session = |scoring: ScoringMode| -> EngineOutcome {
                let mut session = engine(attack_cfg(), n_threads, scoring).session(&anon);
                for chunk in &chunks {
                    session.add_auxiliary_users(chunk);
                }
                session.finish()
            };
            let indexed = run_session(ScoringMode::Indexed);
            let dense = run_session(ScoringMode::Dense);
            assert_outcomes_identical(
                &indexed,
                &dense,
                &format!("incremental, density {density}, {n_threads} threads"),
            );
        }
    }
}

#[test]
fn incremental_attribute_only_weights_match_the_serial_batch() {
    // With attribute-only weights the per-chunk structural caveat
    // vanishes, so an incremental indexed session must equal the serial
    // attack on the merged auxiliary view exactly.
    let attack =
        AttackConfig { weights: SimilarityWeights { c1: 0.0, c2: 0.0, c3: 1.0 }, ..attack_cfg() };
    let aux = random_forum(700, 12, 2, 1);
    let anon = random_forum(800, 8, 2, 1);
    let chunks = cohort_chunks(&aux, 2);
    // The merged view a session builds: users and threads offset by the
    // totals of the preceding chunks.
    let mut merged_posts = Vec::new();
    let (mut user_off, mut thread_off) = (0, 0);
    for chunk in &chunks {
        for p in &chunk.posts {
            merged_posts.push(Post {
                author: p.author + user_off,
                thread: p.thread + thread_off,
                text: p.text.clone(),
            });
        }
        user_off += chunk.n_users;
        thread_off += chunk.n_threads;
    }
    let merged = Forum::from_posts(user_off, thread_off, merged_posts);
    let serial = DeHealth::new(attack.clone()).run(&merged, &anon);
    for &n_threads in &THREAD_COUNTS {
        let mut session = engine(attack.clone(), n_threads, ScoringMode::Indexed).session(&anon);
        for chunk in &chunks {
            session.add_auxiliary_users(chunk);
        }
        let out = session.finish();
        assert_eq!(out.candidates, serial.candidates, "{n_threads} threads");
        assert_eq!(out.mapping, serial.mapping, "{n_threads} threads");
    }
}

#[test]
fn filtering_disables_pruning_but_keeps_parity() {
    let attack = AttackConfig { filtering: Some(FilterConfig::default()), ..attack_cfg() };
    let aux = random_forum(900, 14, 3, 1);
    let anon = random_forum(901, 9, 3, 1);
    let serial = DeHealth::new(attack.clone()).run(&aux, &anon);
    for &n_threads in &THREAD_COUNTS {
        let indexed = engine(attack.clone(), n_threads, ScoringMode::Indexed).run(&aux, &anon);
        assert_eq!(indexed.candidates, serial.candidates, "{n_threads} threads");
        assert_eq!(indexed.mapping, serial.mapping, "{n_threads} threads");
        // Exact Algorithm-2 thresholds need the global score minimum, so
        // the indexed path must not have pruned anything.
        assert_eq!(indexed.report.stage("topk").unwrap().skipped, 0);
    }
}

#[test]
fn pruning_counters_account_for_every_pair() {
    let aux = random_forum(1000, 16, 3, 0);
    let anon = random_forum(1001, 10, 3, 0);
    let n_present_aux = aux.n_users - absent_users(&aux).len();
    for &n_threads in &THREAD_COUNTS {
        let indexed = engine(attack_cfg(), n_threads, ScoringMode::Indexed).run(&aux, &anon);
        let topk = indexed.report.stage("topk").unwrap();
        assert_eq!(
            topk.items + topk.skipped,
            (anon.n_users * n_present_aux) as u64,
            "scored + pruned must cover the pair workload at {n_threads} threads"
        );
    }
}

/// Adversarial posting-list skew: every user shares one ultra-common
/// sentence (so several attributes' posting lists touch the whole
/// population), while each user also emits a unique singleton token.
fn skewed_forum(n_users: usize, n_threads: usize, salt: u64) -> Forum {
    let mut posts = Vec::new();
    for u in 0..n_users {
        let n_posts = 1 + (u + salt as usize) % 3;
        for k in 0..n_posts {
            // The shared sentence puts a hot attribute (each of its words,
            // letters and punctuation) in every user; the zq-token is this
            // user's singleton.
            let text = format!("the pain doctor said rest helps zq{u}x{salt}q. round {k}!");
            posts.push(Post { author: u, thread: (u + k) % n_threads, text });
        }
    }
    Forum::from_posts(n_users, n_threads, posts)
}

#[test]
fn skewed_corpora_stay_bit_identical_and_prune_hot_pairs() {
    // Enough present users that the hot threshold (max(16, present/8))
    // engages: every shared-sentence attribute has a posting list of
    // length ~n_users and moves to the bitmask path.
    let aux = skewed_forum(220, 5, 1);
    let anon = skewed_forum(40, 5, 2);
    let serial = DeHealth::new(attack_cfg()).run(&aux, &anon);
    for &n_threads in &THREAD_COUNTS {
        let indexed = engine(attack_cfg(), n_threads, ScoringMode::Indexed).run(&aux, &anon);
        let dense = engine(attack_cfg(), n_threads, ScoringMode::Dense).run(&aux, &anon);
        let what = format!("skewed corpus, {n_threads} threads");
        assert_outcomes_identical(&indexed, &dense, &what);
        assert_eq!(indexed.candidates, serial.candidates, "serial diverges: {what}");
        assert_eq!(indexed.mapping, serial.mapping, "serial diverges: {what}");
        for (u, entries) in indexed.candidate_scores.iter().enumerate() {
            for &(v, s) in entries {
                assert_eq!(
                    s.to_bits(),
                    serial.similarity[u][v].to_bits(),
                    "score bits diverge from serial matrix for ({u}, {v}): {what}"
                );
            }
        }
        // The skew fix must actually avoid fully scoring most pairs: with
        // pruning on (no filtering configured), the pre-merge upper bound
        // rejects the bulk of the workload.
        let topk = indexed.report.stage("topk").unwrap();
        let pairs = (anon.n_users * aux.n_users) as u64;
        assert_eq!(topk.items + topk.skipped, pairs, "accounting: {what}");
        assert!(
            topk.skipped > pairs / 2,
            "expected most pairs pruned, got {} of {pairs}: {what}",
            topk.skipped
        );
    }
}

#[test]
fn skewed_corpus_activates_the_hot_path() {
    use de_health::core::{IndexedScorer, SimilarityEngine, SimilarityWeights, UdaGraph};
    let aux = skewed_forum(200, 4, 3);
    let anon = skewed_forum(12, 4, 4);
    let aux_uda = UdaGraph::build(&aux);
    let anon_uda = UdaGraph::build(&anon);
    let sim = SimilarityEngine::new(&anon_uda, &aux_uda, SimilarityWeights::default(), 6);
    let index = sim.attribute_index();
    let scorer = IndexedScorer::new(&sim, &index, 0, true);
    assert!(
        scorer.n_hot_attrs() > 0,
        "a 200-user corpus sharing a sentence must classify hot attributes"
    );
}
