//! Integration tests for the Section-VI linkage attack pipeline.

use de_health::linkage::{
    avatar_link, name_link, run_linkage_attack, AvatarLinkConfig, LinkageReport, NameLinkConfig,
    World, WorldConfig,
};

fn world(seed: u64) -> World {
    World::generate(&WorldConfig { n_people: 1500, ..WorldConfig::default() }, seed)
}

#[test]
fn linkage_attack_recovers_identities_with_high_precision() {
    let w = world(1);
    let report = run_linkage_attack(&w, &NameLinkConfig::default(), &AvatarLinkConfig::default());
    assert!(report.n_avatar_linked() > 0);
    assert!(report.n_name_linked() > 0);
    assert!(LinkageReport::precision(&report.avatar_links) > 0.95);
    assert!(LinkageReport::precision(&report.name_links) > 0.75);
}

#[test]
fn avatar_links_subset_of_targets() {
    let w = world(2);
    let links = avatar_link(&w, &AvatarLinkConfig::default());
    for l in &links {
        assert!(w.health_forum[l.forum_account].avatar.is_some());
    }
}

#[test]
fn name_link_respects_entropy_ordering() {
    let w = world(3);
    let lax = name_link(&w, &NameLinkConfig { min_entropy_bits: 0.0 });
    let strict = name_link(&w, &NameLinkConfig { min_entropy_bits: 40.0 });
    assert!(strict.len() <= lax.len());
}

#[test]
fn profiles_only_for_linked_accounts() {
    let w = world(4);
    let report = run_linkage_attack(&w, &NameLinkConfig::default(), &AvatarLinkConfig::default());
    let linked: std::collections::HashSet<usize> =
        report.avatar_links.iter().chain(&report.name_links).map(|l| l.forum_account).collect();
    for fa in report.profiles.keys() {
        assert!(linked.contains(fa), "profile for unlinked account {fa}");
    }
}

#[test]
fn cross_validated_overlap_is_consistent() {
    let w = world(5);
    let report = run_linkage_attack(&w, &NameLinkConfig::default(), &AvatarLinkConfig::default());
    assert!(report.n_overlap <= report.n_avatar_linked().min(report.n_name_linked()));
}
