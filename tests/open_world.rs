//! Open-world integration tests: verification schemes and FP behaviour.

use de_health::core::{AttackConfig, DeHealth, Verification};
use de_health::corpus::split::open_world_split;
use de_health::corpus::{Forum, ForumConfig};

fn forum(seed: u64) -> Forum {
    let mut cfg = ForumConfig::webmd_like(40);
    cfg.fixed_posts = Some(8);
    cfg.mean_post_words = 50.0;
    Forum::generate(&cfg, seed)
}

fn run(verification: Verification, seed: u64) -> (f64, f64) {
    let f = forum(seed);
    let split = open_world_split(&f, 0.5, seed + 1);
    let attack = DeHealth::new(AttackConfig {
        top_k: 5,
        n_landmarks: 5,
        verification,
        ..AttackConfig::default()
    });
    let outcome = attack.run(&split.auxiliary, &split.anonymized);
    let eval = outcome.evaluate(&split.oracle);
    (eval.accuracy(), eval.fp_rate())
}

#[test]
fn open_world_split_has_absent_users() {
    let f = forum(21);
    let split = open_world_split(&f, 0.5, 22);
    assert!(split.oracle.n_overlapping() < split.oracle.len());
    assert!(split.oracle.n_overlapping() > 0);
}

#[test]
fn mean_verification_reduces_false_positives() {
    let (_, fp_none) = run(Verification::None, 31);
    let (_, fp_mean) = run(Verification::Mean { r: 0.25 }, 31);
    // Without verification every absent user that gets mapped is a false
    // positive; mean-verification must not increase the FP rate.
    assert!(fp_mean <= fp_none, "fp_mean={fp_mean} > fp_none={fp_none}");
}

#[test]
fn stronger_margins_are_more_conservative() {
    let (acc_weak, fp_weak) = run(Verification::Mean { r: 0.05 }, 41);
    let (acc_strong, fp_strong) = run(Verification::Mean { r: 1.0 }, 41);
    // A very strong margin rejects more of everything.
    assert!(fp_strong <= fp_weak + 1e-9);
    assert!(acc_strong <= acc_weak + 1e-9);
}

#[test]
fn false_addition_scheme_runs_and_can_reject() {
    let (acc, fp) = run(Verification::FalseAddition { n_false: 5 }, 51);
    assert!((0.0..=1.0).contains(&acc));
    assert!((0.0..=1.0).contains(&fp));
}

#[test]
fn open_world_attack_still_identifies_overlapping_users() {
    let (acc, _) = run(Verification::None, 61);
    assert!(acc > 0.25, "open-world accuracy = {acc}");
}
