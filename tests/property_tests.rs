//! Property-based tests on cross-crate invariants.
//!
//! Originally written against `proptest`; the build environment has no
//! crates.io access, so the same properties are exercised with seeded
//! random generation from the workspace's in-tree `rand` shim (64 cases
//! per property, deterministic across runs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use de_health::graph::{max_weight_matching, Graph, GraphBuilder};
use de_health::ml::{accuracy, Dataset, MinMaxScaler};
use de_health::stylometry::{extract, M};
use de_health::text::{sentences, tokenize, TokenKind};
use de_health::theory::{pairwise_bound, topk_bound, DistanceModel};

const CASES: usize = 64;

/// Arbitrary printable text, mirroring proptest's `\PC` strategy: a mix of
/// common text characters (kept frequent so word/sentence machinery is
/// exercised) and uniformly random non-control Unicode scalars (so
/// multi-byte boundaries, combining marks, RTL scripts, and astral-plane
/// characters all reach the tokenizer).
fn arbitrary_text(rng: &mut StdRng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'z', 'E', 'Q', '0', '9', ' ', ' ', ' ', '.', ',', '!', '?', '\'', '"', '-', '(',
        ')', '$', '%', 'é', 'ü', 'ß', 'Ω', 'λ', '中', '文', 'й', '😀', '🩺', '\u{2014}', '\t',
        '\n',
    ];
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            if rng.gen_range(0..4u8) == 0 {
                random_printable_char(rng)
            } else {
                POOL[rng.gen_range(0..POOL.len())]
            }
        })
        .collect()
}

/// A uniformly random non-control Unicode scalar value (rejection-sampled
/// over the full scalar range, surrogates and control characters excluded).
fn random_printable_char(rng: &mut StdRng) -> char {
    loop {
        if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
            if !c.is_control() {
                return c;
            }
        }
    }
}

/// Text over the restricted charset `[a-zA-Z0-9 .,!?']`.
fn clean_text(rng: &mut StdRng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'g', 'm', 't', 'z', 'A', 'R', 'Z', '0', '5', '9', ' ', ' ', '.', ',', '!', '?', '\'',
    ];
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

/// The tokenizer never panics and spans always slice the input.
#[test]
fn tokenizer_total_on_arbitrary_utf8() {
    let mut rng = StdRng::seed_from_u64(0x70ce);
    for _ in 0..CASES {
        let text = arbitrary_text(&mut rng, 200);
        let toks = tokenize(&text);
        for t in &toks {
            assert_eq!(&text[t.start..t.start + t.text.len()], t.text);
            assert!(!t.text.is_empty());
        }
        // Sentence splitting is also total.
        let _ = sentences(&text);
    }
}

/// Word tokens contain no whitespace or digits.
#[test]
fn word_tokens_are_clean() {
    let mut rng = StdRng::seed_from_u64(0xc1ea);
    for _ in 0..CASES {
        let text = clean_text(&mut rng, 120);
        for t in tokenize(&text) {
            if t.kind == TokenKind::Word {
                assert!(t.text.chars().all(|c| !c.is_whitespace() && !c.is_ascii_digit()));
            }
        }
    }
}

/// Feature extraction is total, non-negative and finite on any input.
#[test]
fn feature_extraction_is_sane() {
    let mut rng = StdRng::seed_from_u64(0xfea7);
    for _ in 0..CASES {
        let text = arbitrary_text(&mut rng, 300);
        let v = extract(&text);
        for (i, x) in v.iter_nonzero() {
            assert!(i < M);
            assert!(x.is_finite() && x > 0.0);
        }
    }
}

/// Feature extraction is deterministic.
#[test]
fn feature_extraction_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xdede);
    for _ in 0..CASES {
        let text = arbitrary_text(&mut rng, 200);
        assert_eq!(extract(&text), extract(&text));
    }
}

/// Hungarian matching output is always a valid injective assignment and
/// never worse than the greedy row-by-row assignment.
#[test]
fn matching_is_injective_and_beats_greedy() {
    let mut rng = StdRng::seed_from_u64(0x3a7c);
    for _ in 0..CASES {
        let rows = rng.gen_range(1usize..5);
        let cols = rows + rng.gen_range(0usize..4);
        let vals: Vec<f64> = (0..25).map(|_| rng.gen::<f64>() * 10.0).collect();
        let w: Vec<Vec<f64>> = (0..rows)
            .map(|i| (0..cols).map(|j| vals[(i * cols + j) % vals.len()]).collect())
            .collect();
        let assign = max_weight_matching(&w);
        // Injective.
        let mut seen = std::collections::HashSet::new();
        for &j in &assign {
            assert!(j < cols);
            assert!(seen.insert(j));
        }
        let optimal: f64 = assign.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
        // Greedy baseline.
        let mut used = vec![false; cols];
        let mut greedy = 0.0;
        for row in &w {
            let (j, &v) = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| !used[j])
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            used[j] = true;
            greedy += v;
        }
        assert!(optimal >= greedy - 1e-9);
    }
}

/// Min-max scaling always lands in [0, 1].
#[test]
fn minmax_scaler_bounds() {
    let mut rng = StdRng::seed_from_u64(0x5ca1);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..20);
        let mut d = Dataset::new(3);
        for _ in 0..n {
            let s: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() * 200.0 - 100.0).collect();
            d.push(&s, 0);
        }
        let scaler = MinMaxScaler::fit(&d);
        let mut scaled = d.clone();
        scaler.transform(&mut scaled);
        for i in 0..scaled.len() {
            for &v in scaled.sample(i) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}

/// Accuracy is the fraction of agreeing positions.
#[test]
fn accuracy_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(0xacc0);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..30);
        let pred: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..5)).collect();
        let truth: Vec<usize> = pred.iter().map(|&p| (p + 1) % 5).collect();
        assert_eq!(accuracy(&pred, &pred), 1.0);
        assert_eq!(accuracy(&pred, &truth), 0.0);
    }
}

/// Theory bounds are probabilities, monotone in the gap, and Top-K
/// dominates exact.
#[test]
fn theory_bounds_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(0x7e04);
    for _ in 0..CASES {
        let gap = 0.1 + rng.gen::<f64>() * 19.9;
        let k = rng.gen_range(1usize..100);
        let m = DistanceModel {
            lambda_correct: 1.0,
            lambda_incorrect: 1.0 + gap,
            range_correct: 1.0,
            range_incorrect: 1.0,
        };
        let t1 = pairwise_bound(&m);
        let t3 = topk_bound(&m, 100, k.min(100));
        assert!((0.0..=1.0).contains(&t1));
        assert!((0.0..=1.0).contains(&t3));
    }
}

/// Graph construction invariants: weights accumulate, degrees bounded.
#[test]
fn graph_builder_invariants() {
    let mut rng = StdRng::seed_from_u64(0x6ba9);
    for _ in 0..CASES {
        let n_edges = rng.gen_range(0usize..40);
        let mut b = GraphBuilder::new(10);
        for _ in 0..n_edges {
            let x = rng.gen_range(0usize..10);
            let y = rng.gen_range(0usize..10);
            let w = 0.1 + rng.gen::<f64>() * 4.9;
            b.add_edge(x, y, w);
        }
        let g: Graph = b.build();
        assert_eq!(g.node_count(), 10);
        for u in 0..10 {
            assert!(g.degree(u) < 10);
            let ncs = g.ncs_vector(u);
            // NCS is sorted decreasing.
            assert!(ncs.windows(2).all(|w| w[0] >= w[1]));
            // Weighted degree equals the NCS sum.
            let wd: f64 = ncs.iter().sum();
            assert!((g.weighted_degree(u) - wd).abs() < 1e-9);
        }
    }
}
