//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;

use de_health::graph::{max_weight_matching, Graph, GraphBuilder};
use de_health::ml::{accuracy, Dataset, MinMaxScaler};
use de_health::stylometry::{extract, M};
use de_health::text::{sentences, tokenize, TokenKind};
use de_health::theory::{pairwise_bound, topk_bound, DistanceModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tokenizer never panics and spans always slice the input.
    #[test]
    fn tokenizer_total_on_arbitrary_utf8(text in "\\PC{0,200}") {
        let toks = tokenize(&text);
        for t in &toks {
            prop_assert_eq!(&text[t.start..t.start + t.text.len()], t.text);
            prop_assert!(!t.text.is_empty());
        }
        // Sentence splitting is also total.
        let _ = sentences(&text);
    }

    /// Word tokens contain no whitespace or digits.
    #[test]
    fn word_tokens_are_clean(text in "[a-zA-Z0-9 .,!?']{0,120}") {
        for t in tokenize(&text) {
            if t.kind == TokenKind::Word {
                prop_assert!(t.text.chars().all(|c| !c.is_whitespace() && !c.is_ascii_digit()));
            }
        }
    }

    /// Feature extraction is total, non-negative and finite on any input.
    #[test]
    fn feature_extraction_is_sane(text in "\\PC{0,300}") {
        let v = extract(&text);
        for (i, x) in v.iter_nonzero() {
            prop_assert!(i < M);
            prop_assert!(x.is_finite() && x > 0.0);
        }
    }

    /// Feature extraction is deterministic.
    #[test]
    fn feature_extraction_deterministic(text in "\\PC{0,200}") {
        prop_assert_eq!(extract(&text), extract(&text));
    }

    /// Hungarian matching output is always a valid injective assignment
    /// and never worse than the greedy row-by-row assignment.
    #[test]
    fn matching_is_injective_and_beats_greedy(
        rows in 1usize..5,
        cols_extra in 0usize..4,
        vals in proptest::collection::vec(0.0f64..10.0, 25),
    ) {
        let cols = rows + cols_extra;
        let w: Vec<Vec<f64>> = (0..rows)
            .map(|i| (0..cols).map(|j| vals[(i * cols + j) % vals.len()]).collect())
            .collect();
        let assign = max_weight_matching(&w);
        // Injective.
        let mut seen = std::collections::HashSet::new();
        for &j in &assign {
            prop_assert!(j < cols);
            prop_assert!(seen.insert(j));
        }
        let optimal: f64 = assign.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
        // Greedy baseline.
        let mut used = vec![false; cols];
        let mut greedy = 0.0;
        for row in &w {
            let (j, &v) = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| !used[j])
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            used[j] = true;
            greedy += v;
        }
        prop_assert!(optimal >= greedy - 1e-9);
    }

    /// Min-max scaling always lands in [0, 1].
    #[test]
    fn minmax_scaler_bounds(
        samples in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3), 1..20),
    ) {
        let mut d = Dataset::new(3);
        for s in &samples {
            d.push(s, 0);
        }
        let scaler = MinMaxScaler::fit(&d);
        let mut scaled = d.clone();
        scaler.transform(&mut scaled);
        for i in 0..scaled.len() {
            for &v in scaled.sample(i) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    /// Accuracy is the fraction of agreeing positions.
    #[test]
    fn accuracy_in_unit_interval(
        pred in proptest::collection::vec(0usize..5, 1..30),
    ) {
        let truth: Vec<usize> = pred.iter().map(|&p| (p + 1) % 5).collect();
        prop_assert_eq!(accuracy(&pred, &pred), 1.0);
        prop_assert_eq!(accuracy(&pred, &truth), 0.0);
    }

    /// Theory bounds are probabilities, monotone in the gap, and Top-K
    /// dominates exact.
    #[test]
    fn theory_bounds_are_probabilities(gap in 0.1f64..20.0, k in 1usize..100) {
        let m = DistanceModel {
            lambda_correct: 1.0,
            lambda_incorrect: 1.0 + gap,
            range_correct: 1.0,
            range_incorrect: 1.0,
        };
        let t1 = pairwise_bound(&m);
        let t3 = topk_bound(&m, 100, k.min(100));
        prop_assert!((0.0..=1.0).contains(&t1));
        prop_assert!((0.0..=1.0).contains(&t3));
    }

    /// Graph construction invariants: weights accumulate, degrees bounded.
    #[test]
    fn graph_builder_invariants(
        edges in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..5.0), 0..40),
    ) {
        let mut b = GraphBuilder::new(10);
        for &(x, y, w) in &edges {
            b.add_edge(x, y, w);
        }
        let g: Graph = b.build();
        prop_assert_eq!(g.node_count(), 10);
        for u in 0..10 {
            prop_assert!(g.degree(u) < 10);
            let ncs = g.ncs_vector(u);
            // NCS is sorted decreasing.
            prop_assert!(ncs.windows(2).all(|w| w[0] >= w[1]));
            // Weighted degree equals the NCS sum.
            let wd: f64 = ncs.iter().sum();
            prop_assert!((g.weighted_degree(u) - wd).abs() < 1e-9);
        }
    }
}
