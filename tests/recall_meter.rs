//! Recall meter for the approximate fast tier.
//!
//! The approximate tier (`ExactnessMode::Approx`) trades recall for
//! speed behind a single margin dial — but only when *asked to*. This
//! harness pins the two sides of that contract:
//!
//! 1. **Exact mode is lossless.** Under the default
//!    `ExactnessMode::Exact`, the indexed engine's recall against the
//!    serial reference attack is exactly 1.0 — recall@1, recall@k and
//!    mapping agreement — for **every** classifier × verification
//!    combination, and the prescreen tally stays empty. Approximation
//!    must never leak into the default path.
//! 2. **A zero margin is the identity.** `Approx { margin: 0.0 }` is
//!    bit-identical to `Exact` (candidates, score bits, mapping) across
//!    the same sweep: the prescreen band and the quantized rescore band
//!    are both empty at margin 0, so dialing the margin down reaches
//!    exactness continuously instead of jumping between code paths.
//!
//! A final smoke test checks the opposite direction — a wide positive
//! margin actually engages the prescreen (non-empty tally), so the dial
//! is live and the exactness of the first two tests is not vacuous.

use de_health::core::{AttackConfig, ClassifierKind, DeHealth, Verification};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig, Split};
use de_health::engine::{
    Engine, EngineConfig, EngineOutcome, ExactnessMode, RefinedMode, ScoringMode,
};

const CLASSIFIERS: [ClassifierKind; 4] = [
    ClassifierKind::Knn { k: 3 },
    ClassifierKind::Smo,
    ClassifierKind::Rlsc { lambda: 1.0 },
    ClassifierKind::Centroid,
];

const VERIFICATIONS: [Verification; 5] = [
    Verification::None,
    Verification::Mean { r: 0.25 },
    Verification::FalseAddition { n_false: 3 },
    Verification::Distractorless { theta: 0.2 },
    Verification::Sigma { factor: 2.0 },
];

/// Small enough that the 20-combination sweep stays fast in debug
/// builds, large enough for non-trivial Top-K sets and rejections.
fn small_split() -> Split {
    let mut c = ForumConfig::webmd_like(36);
    c.mean_post_words = 40.0;
    let forum = Forum::generate(&c, 42);
    closed_world_split(&forum, &SplitConfig::fraction(0.5), 7)
}

fn engine_run(split: &Split, attack: AttackConfig, exactness: ExactnessMode) -> EngineOutcome {
    Engine::new(EngineConfig {
        attack,
        n_threads: 2,
        block_size: 8,
        scoring: ScoringMode::Indexed,
        refined: RefinedMode::Shared,
        exactness,
        ..EngineConfig::default()
    })
    .run(&split.auxiliary, &split.anonymized)
}

/// Recall of `got` against the reference run: (recall@1, recall@k,
/// mapping agreement), each in `[0, 1]`. Users whose reference candidate
/// set is empty are excluded from recall@1; recall@k pools the reference
/// Top-K entries and counts how many survive in `got`.
fn recall_metrics(
    reference: &(Vec<Vec<usize>>, Vec<Option<usize>>),
    got: &EngineOutcome,
) -> (f64, f64, f64) {
    let (ref_candidates, ref_mapping) = reference;
    let mut top1_hits = 0usize;
    let mut top1_total = 0usize;
    let mut pool_hits = 0usize;
    let mut pool_total = 0usize;
    for (u, exact_set) in ref_candidates.iter().enumerate() {
        if let Some(&best) = exact_set.first() {
            top1_total += 1;
            top1_hits += usize::from(got.candidates[u].first() == Some(&best));
        }
        pool_total += exact_set.len();
        pool_hits += exact_set.iter().filter(|v| got.candidates[u].contains(v)).count();
    }
    let agree = ref_mapping.iter().zip(&got.mapping).filter(|(a, b)| a == b).count();
    let frac =
        |hits: usize, total: usize| if total == 0 { 1.0 } else { hits as f64 / total as f64 };
    (frac(top1_hits, top1_total), frac(pool_hits, pool_total), frac(agree, ref_mapping.len()))
}

fn attack_with(classifier: ClassifierKind, verification: Verification) -> AttackConfig {
    AttackConfig { classifier, verification, ..AttackConfig::default() }
}

/// Exact mode scores 1.0 on every recall axis against the serial
/// reference, for all classifier × verification combos, with an empty
/// prescreen tally.
#[test]
fn exact_mode_recall_is_one_across_all_combos() {
    let split = small_split();
    for classifier in CLASSIFIERS {
        for verification in VERIFICATIONS {
            let attack = attack_with(classifier, verification);
            let label = format!("{classifier:?} / {verification:?}");
            let serial = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);
            let reference = (serial.candidates, serial.mapping);
            let exact = engine_run(&split, attack, ExactnessMode::Exact);
            assert!(exact.report.prescreen.is_empty(), "prescreen active in Exact mode ({label})");
            let (r1, rk, agree) = recall_metrics(&reference, &exact);
            assert_eq!(r1, 1.0, "recall@1 below 1.0 in Exact mode ({label})");
            assert_eq!(rk, 1.0, "recall@k below 1.0 in Exact mode ({label})");
            assert_eq!(agree, 1.0, "mapping agreement below 1.0 in Exact mode ({label})");
        }
    }
}

/// `Approx { margin: 0.0 }` is bit-identical to `Exact` — same
/// candidates, same score bits, same mapping — across the full sweep.
#[test]
fn zero_margin_is_bit_identical_to_exact() {
    let split = small_split();
    for classifier in CLASSIFIERS {
        for verification in VERIFICATIONS {
            let attack = attack_with(classifier, verification);
            let label = format!("{classifier:?} / {verification:?}");
            let exact = engine_run(&split, attack.clone(), ExactnessMode::Exact);
            let zero = engine_run(&split, attack, ExactnessMode::Approx { margin: 0.0 });
            assert_eq!(zero.candidates, exact.candidates, "candidates diverge ({label})");
            assert_eq!(zero.mapping, exact.mapping, "mapping diverges ({label})");
            for (a, b) in exact.candidate_scores.iter().zip(&zero.candidate_scores) {
                let bits = |row: &[(usize, f64)]| {
                    row.iter().map(|&(v, s)| (v, s.to_bits())).collect::<Vec<_>>()
                };
                assert_eq!(bits(a), bits(b), "score bits diverge ({label})");
            }
            assert!(zero.report.prescreen.is_empty(), "prescreen tallied at margin 0 ({label})");
        }
    }
}

/// A wide positive margin actually engages the dial: the prescreen
/// skips pairs and the tally shows up on the report, so the exactness
/// asserted above is not vacuous.
#[test]
fn positive_margin_engages_the_prescreen() {
    let split = small_split();
    let attack = attack_with(ClassifierKind::Knn { k: 3 }, Verification::None);
    let serial = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);
    let reference = (serial.candidates, serial.mapping);
    let wide = engine_run(&split, attack, ExactnessMode::Approx { margin: 0.5 });
    let tally = &wide.report.prescreen;
    assert!(!tally.is_empty(), "margin 0.5 never engaged the prescreen");
    assert!(tally.skipped > 0, "margin 0.5 skipped no pairs");
    let (r1, rk, agree) = recall_metrics(&reference, &wide);
    for (name, value) in [("recall@1", r1), ("recall@k", rk), ("agreement", agree)] {
        assert!((0.0..=1.0).contains(&value), "{name} out of range: {value}");
    }
}
