//! Differential harness for the Refined-DA fast path.
//!
//! Three independent integrations must produce **bit-identical** mappings
//! on seeded forums:
//!
//! 1. a hand-rolled per-user oracle loop calling `refine_user` (the
//!    from-scratch path: fresh dataset, scaler clone, owned classifier per
//!    anonymized user) over the serial attack's candidate sets;
//! 2. the serial `DeHealth::run`, which routes phase 2 through the
//!    materialize-once `RefinedContext` fast path;
//! 3. the parallel engine in both `RefinedMode`s — `Shared` (fast path,
//!    swept at 1/2/8 worker threads) and `PerUser` (the oracle re-run
//!    under sharding).
//!
//! The sweep covers all four `ClassifierKind`s × all five `Verification`
//! schemes, in open world (where verification actually rejects) and
//! closed world, plus an Algorithm-2 filtering combination.

use de_health::core::uda::extract_post_features;
use de_health::core::{
    refine_user, AttackConfig, ClassifierKind, DeHealth, FilterConfig, RefinedConfig, Side,
    UdaGraph, Verification,
};
use de_health::corpus::split::{closed_world_split, open_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig, Split};
use de_health::engine::{Engine, EngineConfig, RefinedMode};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

const CLASSIFIERS: [ClassifierKind; 4] = [
    ClassifierKind::Knn { k: 3 },
    ClassifierKind::Smo,
    ClassifierKind::Rlsc { lambda: 1.0 },
    ClassifierKind::Centroid,
];

const VERIFICATIONS: [Verification; 5] = [
    Verification::None,
    Verification::Mean { r: 0.25 },
    Verification::FalseAddition { n_false: 3 },
    Verification::Distractorless { theta: 0.2 },
    Verification::Sigma { factor: 2.0 },
];

/// A forum small enough that the 26-combination sweep stays fast in debug
/// builds, but with enough users that Top-K sets, decoy pools and
/// verification rejections are all non-trivial.
fn small_config() -> ForumConfig {
    let mut c = ForumConfig::webmd_like(36);
    c.mean_post_words = 40.0;
    c
}

fn open_split() -> Split {
    let forum = Forum::generate(&small_config(), 23);
    open_world_split(&forum, 0.7, 3)
}

fn closed_split() -> Split {
    let forum = Forum::generate(&small_config(), 42);
    closed_world_split(&forum, &SplitConfig::fraction(0.5), 7)
}

/// The per-user-from-scratch oracle: `refine_user` over the serial
/// attack's candidate sets and similarity rows, with sides built directly
/// from the corpus primitives (no `DeHealth` plumbing shared with the
/// path under test).
fn per_user_oracle(
    split: &Split,
    attack: &AttackConfig,
    candidates: &[Vec<usize>],
    similarity: &[Vec<f64>],
) -> Vec<Option<usize>> {
    let aux_feats = extract_post_features(&split.auxiliary);
    let anon_feats = extract_post_features(&split.anonymized);
    let aux_uda = UdaGraph::build_with_features(&split.auxiliary, &aux_feats);
    let anon_uda = UdaGraph::build_with_features(&split.anonymized, &anon_feats);
    let aux = Side { forum: &split.auxiliary, uda: &aux_uda, post_features: &aux_feats };
    let anon = Side { forum: &split.anonymized, uda: &anon_uda, post_features: &anon_feats };
    let config = RefinedConfig {
        classifier: attack.classifier,
        verification: attack.verification,
        seed: attack.seed,
    };
    (0..split.anonymized.n_users)
        .map(|u| refine_user(u, &candidates[u], &anon, &aux, &similarity[u], &config))
        .collect()
}

fn assert_refined_parity(split: &Split, attack: AttackConfig) {
    let label = format!("{:?} / {:?}", attack.classifier, attack.verification);
    let serial = DeHealth::new(attack.clone()).run(&split.auxiliary, &split.anonymized);

    // Serial fast path vs the hand-rolled per-user oracle.
    let oracle = per_user_oracle(split, &attack, &serial.candidates, &serial.similarity);
    assert_eq!(serial.mapping, oracle, "serial fast path vs per-user oracle ({label})");

    // Engine fast path across worker counts.
    for n_threads in THREAD_COUNTS {
        let shared = Engine::new(EngineConfig {
            attack: attack.clone(),
            n_threads,
            block_size: 8,
            refined: RefinedMode::Shared,
            ..EngineConfig::default()
        })
        .run(&split.auxiliary, &split.anonymized);
        assert_eq!(
            shared.mapping, serial.mapping,
            "engine Shared vs serial at {n_threads} threads ({label})"
        );
        assert_eq!(
            shared.candidates, serial.candidates,
            "candidate sets diverge at {n_threads} threads ({label})"
        );
    }
}

fn attack_with(classifier: ClassifierKind, verification: Verification) -> AttackConfig {
    AttackConfig {
        top_k: 4,
        n_landmarks: 10,
        classifier,
        verification,
        seed: 9,
        ..AttackConfig::default()
    }
}

#[test]
fn open_world_knn_all_verifications() {
    let split = open_split();
    for verification in VERIFICATIONS {
        assert_refined_parity(&split, attack_with(ClassifierKind::Knn { k: 3 }, verification));
    }
}

#[test]
fn open_world_smo_all_verifications() {
    let split = open_split();
    for verification in VERIFICATIONS {
        assert_refined_parity(&split, attack_with(ClassifierKind::Smo, verification));
    }
}

#[test]
fn open_world_rlsc_all_verifications() {
    let split = open_split();
    for verification in VERIFICATIONS {
        assert_refined_parity(
            &split,
            attack_with(ClassifierKind::Rlsc { lambda: 1.0 }, verification),
        );
    }
}

#[test]
fn open_world_centroid_all_verifications() {
    let split = open_split();
    for verification in VERIFICATIONS {
        assert_refined_parity(&split, attack_with(ClassifierKind::Centroid, verification));
    }
}

#[test]
fn closed_world_all_classifiers() {
    let split = closed_split();
    for classifier in CLASSIFIERS {
        assert_refined_parity(&split, attack_with(classifier, Verification::None));
    }
}

#[test]
fn engine_per_user_mode_matches_shared_mode() {
    // The engine's own oracle mode (refine_user under sharding) against
    // the shared fast path, at the full thread sweep.
    let split = open_split();
    for classifier in [ClassifierKind::Knn { k: 3 }, ClassifierKind::Centroid] {
        let attack = attack_with(classifier, Verification::Mean { r: 0.25 });
        let peruser = Engine::new(EngineConfig {
            attack: attack.clone(),
            n_threads: 2,
            block_size: 8,
            refined: RefinedMode::PerUser,
            ..EngineConfig::default()
        })
        .run(&split.auxiliary, &split.anonymized);
        for n_threads in THREAD_COUNTS {
            let shared = Engine::new(EngineConfig {
                attack: attack.clone(),
                n_threads,
                block_size: 8,
                refined: RefinedMode::Shared,
                ..EngineConfig::default()
            })
            .run(&split.auxiliary, &split.anonymized);
            assert_eq!(shared.mapping, peruser.mapping, "{classifier:?} at {n_threads} threads");
        }
    }
}

#[test]
fn closed_world_with_filtering_and_mean_verification() {
    let split = closed_split();
    assert_refined_parity(
        &split,
        AttackConfig {
            top_k: 5,
            n_landmarks: 10,
            filtering: Some(FilterConfig::default()),
            verification: Verification::Mean { r: 0.1 },
            seed: 4,
            ..AttackConfig::default()
        },
    );
}

#[test]
fn verification_schemes_really_reject_in_open_world() {
    // Guard against the sweep silently degenerating into all-accept: in
    // open world with a strict mean margin, some users must map to ⊥.
    let split = open_split();
    let strict =
        DeHealth::new(attack_with(ClassifierKind::Knn { k: 3 }, Verification::Mean { r: 1.5 }))
            .run(&split.auxiliary, &split.anonymized);
    let rejected = strict.mapping.iter().filter(|m| m.is_none()).count();
    assert!(rejected > 0, "strict mean-verification rejected nobody");
    let lax = DeHealth::new(attack_with(ClassifierKind::Knn { k: 3 }, Verification::None))
        .run(&split.auxiliary, &split.anonymized);
    let lax_rejected = lax.mapping.iter().filter(|m| m.is_none()).count();
    assert!(rejected > lax_rejected, "verification must reject more than closed-world");
}
