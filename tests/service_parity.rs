//! Daemon round-trip parity: a wire `attack` on a snapshot-loaded corpus
//! must produce mappings and candidate sets **bit-identical** to the
//! in-process serial `DeHealth::run` on the freshly built corpus — at 1
//! and 8 worker threads, in both the owned and the zero-copy (mmap) load
//! mode — plus protocol behavior (incremental ingest, stats, error
//! responses, shutdown) and the protocol-hardening limits (request size
//! cap, half-open read deadline, max-connections cap).

use std::time::Duration;

use de_health::core::{AttackConfig, DeHealth};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig, Post};
use de_health::engine::EngineConfig;
use de_health::service::daemon::default_config;
use de_health::service::{
    AttackOptions, Daemon, DaemonLimits, Json, LoadMode, PreparedCorpus, ServiceClient,
};

fn tiny_split() -> de_health::corpus::Split {
    let forum = Forum::generate(&ForumConfig::tiny(), 42);
    closed_world_split(&forum, &SplitConfig::fraction(0.5), 7)
}

fn attack_cfg() -> AttackConfig {
    AttackConfig { top_k: 5, n_landmarks: 10, ..AttackConfig::default() }
}

#[test]
fn wire_attack_on_snapshot_matches_serial_attack_at_1_and_8_threads() {
    let split = tiny_split();
    let reference = DeHealth::new(attack_cfg()).run(&split.auxiliary, &split.anonymized);

    // Freshly built corpus → snapshot file → daemon `load_snapshot`.
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let snap_path = std::env::temp_dir().join("dehealth-service-parity-test.snap");
    corpus.save(&snap_path).unwrap();

    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    let loaded = client.load_snapshot(snap_path.to_str().unwrap()).unwrap();
    assert_eq!(loaded.get("users").and_then(Json::as_usize), Some(split.auxiliary.n_users));

    for threads in [1usize, 8] {
        let options = AttackOptions { threads: Some(threads), ..AttackOptions::default() };
        let reply = client.attack(&split.anonymized, &options).unwrap();
        assert_eq!(
            reply.mapping, reference.mapping,
            "wire mapping diverged from DeHealth::run at {threads} threads"
        );
        assert_eq!(
            reply.candidates, reference.candidates,
            "wire candidates diverged from DeHealth::run at {threads} threads"
        );
        // The report travels with every attack and covers the pipeline.
        let report = reply.raw.get("report").expect("report present");
        assert_eq!(report.get("n_threads").and_then(Json::as_usize), Some(threads));
        let stages = report.get("stages").and_then(Json::as_array).expect("stages");
        let names: Vec<_> =
            stages.iter().filter_map(|s| s.get("stage").and_then(Json::as_str)).collect();
        assert!(names.contains(&"prepare") && names.contains(&"topk"));
        assert!(names.contains(&"refined"));
    }

    client.shutdown().unwrap();
    daemon.join();
    std::fs::remove_file(&snap_path).unwrap();
}

#[test]
fn wire_attack_on_mmap_loaded_corpus_is_bit_identical_to_owned_and_serial() {
    // The zero-copy acceptance oracle: one daemon per load mode, both
    // serving the same snapshot file; wire attacks at 1 and 8 worker
    // threads must agree with each other AND with the serial
    // `DeHealth::run` reference, bit for bit.
    let split = tiny_split();
    let reference = DeHealth::new(attack_cfg()).run(&split.auxiliary, &split.anonymized);
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let snap_path = std::env::temp_dir().join("dehealth-service-mmap-parity-test.snap");
    corpus.save(&snap_path).unwrap();

    // Sanity at the corpus level: the mapped load really borrows.
    let mapped = PreparedCorpus::load_with(&snap_path, LoadMode::Mapped).unwrap();
    assert!(mapped.is_mapped());
    assert_eq!(mapped.memory_stats().resident_arena_bytes, 0);
    drop(mapped);

    for (mode, expect_mapped) in [("owned", false), ("mmap", true)] {
        let config = EngineConfig { attack: attack_cfg(), ..default_config() };
        let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
        let mut client = ServiceClient::connect(daemon.addr()).unwrap();
        let loaded = client
            .request(&Json::Obj(vec![
                ("cmd".into(), Json::Str("load_snapshot".into())),
                ("path".into(), Json::Str(snap_path.to_str().unwrap().into())),
                ("mode".into(), Json::Str(mode.into())),
            ]))
            .unwrap();
        assert_eq!(loaded.get("mapped").and_then(Json::as_bool), Some(expect_mapped), "{mode}");
        if expect_mapped {
            assert_eq!(loaded.get("resident_arena_bytes").and_then(Json::as_usize), Some(0));
            assert!(loaded.get("borrowed_arena_bytes").and_then(Json::as_usize).unwrap() > 0);
        }
        for threads in [1usize, 8] {
            let options = AttackOptions { threads: Some(threads), ..AttackOptions::default() };
            let reply = client.attack(&split.anonymized, &options).unwrap();
            assert_eq!(
                reply.mapping, reference.mapping,
                "{mode} wire mapping diverged from DeHealth::run at {threads} threads"
            );
            assert_eq!(
                reply.candidates, reference.candidates,
                "{mode} wire candidates diverged from DeHealth::run at {threads} threads"
            );
        }
        client.shutdown().unwrap();
        daemon.join();
    }
    std::fs::remove_file(&snap_path).unwrap();
}

#[test]
fn streaming_ingest_into_mmap_loaded_corpus_promotes_and_stays_exact() {
    // Load zero-copy over the wire, then stream an extra cohort in: the
    // copy-on-write promotion must leave the daemon serving exactly the
    // merged corpus (attack parity vs. a serial run on the union).
    let split = tiny_split();
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let snap_path = std::env::temp_dir().join("dehealth-service-mmap-ingest-test.snap");
    corpus.save(&snap_path).unwrap();

    let chunk = Forum::generate(&ForumConfig::tiny(), 77);
    let mut merged_posts: Vec<Post> = split.auxiliary.posts.clone();
    for p in &chunk.posts {
        merged_posts.push(Post {
            author: p.author + split.auxiliary.n_users,
            thread: p.thread + split.auxiliary.n_threads,
            text: p.text.clone(),
        });
    }
    let merged = Forum::from_posts(
        split.auxiliary.n_users + chunk.n_users,
        split.auxiliary.n_threads + chunk.n_threads,
        merged_posts,
    );
    let reference = DeHealth::new(attack_cfg()).run(&merged, &split.anonymized);

    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    client.load_snapshot(snap_path.to_str().unwrap()).unwrap(); // default mode = mmap
    client.add_auxiliary_users(&chunk).unwrap();
    let reply = client.attack(&split.anonymized, &AttackOptions::default()).unwrap();
    assert_eq!(reply.mapping, reference.mapping);
    assert_eq!(reply.candidates, reference.candidates);
    client.shutdown().unwrap();
    daemon.join();
    std::fs::remove_file(&snap_path).unwrap();
}

#[test]
fn oversized_requests_get_a_typed_error_and_a_closed_connection() {
    use std::io::{BufRead, BufReader, Write};
    let limits = DaemonLimits { max_request_bytes: 512, ..DaemonLimits::default() };
    let daemon = Daemon::bind_with("127.0.0.1:0", default_config(), None, limits).unwrap();
    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Pour > 512 bytes of a never-ending request line down the socket.
    let blob = vec![b'x'; 8 * 1024];
    let _ = stream.write_all(&blob);
    let _ = stream.flush();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(response.get("error").and_then(Json::as_str).unwrap().contains("byte limit"));
    // Connection is closed afterwards.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    assert_eq!(daemon.stats().dropped_connections, 1);

    // A well-behaved client on a fresh connection still gets served.
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    assert!(client.stats().is_ok());
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn half_open_connections_hit_the_read_deadline() {
    use std::io::{BufRead, BufReader, Write};
    let limits =
        DaemonLimits { read_deadline: Duration::from_millis(150), ..DaemonLimits::default() };
    let daemon = Daemon::bind_with("127.0.0.1:0", default_config(), None, limits).unwrap();
    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Start a request and stall forever.
    stream.write_all(b"{\"cmd\":\"sta").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(response.get("error").and_then(Json::as_str).unwrap().contains("read deadline"));
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection must be closed");
    assert_eq!(daemon.stats().dropped_connections, 1);

    // An idle connection with NO partial request is not deadline-killed:
    // it can still issue a request long after the deadline.
    let mut idle = ServiceClient::connect(daemon.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert!(idle.stats().is_ok());
    idle.shutdown().unwrap();
    daemon.join();
}

#[test]
fn connections_beyond_the_cap_are_rejected_with_a_typed_error() {
    use std::io::{BufRead, BufReader};
    let limits = DaemonLimits { max_connections: 1, ..DaemonLimits::default() };
    let daemon = Daemon::bind_with("127.0.0.1:0", default_config(), None, limits).unwrap();
    // First connection occupies the single slot (prove it is serving).
    let mut first = ServiceClient::connect(daemon.addr()).unwrap();
    assert!(first.stats().is_ok());
    // Second connection gets the typed rejection line, then EOF.
    let over = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(over);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(response.get("error").and_then(Json::as_str).unwrap().contains("connection limit"));
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    assert_eq!(daemon.stats().rejected_connections, 1);
    // The established session is unaffected; the freed slot serves again.
    let stats = first.stats().unwrap();
    assert_eq!(stats.get("rejected_connections").and_then(Json::as_usize), Some(1));
    first.shutdown().unwrap();
    daemon.join();
}

#[test]
fn incremental_wire_ingest_matches_batch_reference() {
    // Stream the auxiliary side in two cohorts through
    // `add_auxiliary_users` (bootstrap + append); the wire attack must
    // match the serial attack on the merged corpus the daemon is
    // documented to hold (chunk ids offset by prior totals).
    let split = tiny_split();
    let aux = &split.auxiliary;
    let cut = aux.n_users / 2;
    let chunk_of = |lo: usize, hi: usize| {
        let posts: Vec<Post> = aux
            .posts
            .iter()
            .filter(|p| (lo..hi).contains(&p.author))
            .map(|p| Post { author: p.author - lo, thread: p.thread, text: p.text.clone() })
            .collect();
        Forum::from_posts(hi - lo, aux.n_threads, posts)
    };
    let chunks = [chunk_of(0, cut), chunk_of(cut, aux.n_users)];
    let mut merged_posts = Vec::new();
    let (mut user_off, mut thread_off) = (0usize, 0usize);
    for chunk in &chunks {
        for p in &chunk.posts {
            merged_posts.push(Post {
                author: p.author + user_off,
                thread: p.thread + thread_off,
                text: p.text.clone(),
            });
        }
        user_off += chunk.n_users;
        thread_off += chunk.n_threads;
    }
    let merged = Forum::from_posts(user_off, thread_off, merged_posts);
    let reference = DeHealth::new(attack_cfg()).run(&merged, &split.anonymized);

    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();

    // No corpus yet: attack must fail with a remote error, not a panic.
    let err = client.attack(&split.anonymized, &AttackOptions::default());
    assert!(matches!(err, Err(de_health::service::ServiceError::Remote(_))));

    let first = client.add_auxiliary_users(&chunks[0]).unwrap();
    assert_eq!(first.get("users").and_then(Json::as_usize), Some(cut));
    let second = client.add_auxiliary_users(&chunks[1]).unwrap();
    assert_eq!(second.get("users").and_then(Json::as_usize), Some(aux.n_users));

    let reply = client.attack(&split.anonymized, &AttackOptions::default()).unwrap();
    assert_eq!(reply.mapping, reference.mapping);
    assert_eq!(reply.candidates, reference.candidates);

    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn stats_count_served_work_and_errors() {
    let split = tiny_split();
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind_with_corpus("127.0.0.1:0", config, Some(corpus)).unwrap();

    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    let reply = client.attack(&split.anonymized, &AttackOptions::default()).unwrap();
    let mapped = reply.mapping.iter().filter(|m| m.is_some()).count();

    // Malformed request and unknown command both get error responses.
    let err = client.request(&Json::parse(r#"{"cmd":"no_such_cmd"}"#).unwrap());
    assert!(
        matches!(err, Err(de_health::service::ServiceError::Remote(m)) if m.contains("unknown"))
    );
    let err = client.request(&Json::parse(r#"{"nope": 1}"#).unwrap());
    assert!(matches!(err, Err(de_health::service::ServiceError::Remote(m)) if m.contains("cmd")));

    // A second concurrent connection sees the same standing corpus.
    let mut other = ServiceClient::connect(daemon.addr()).unwrap();
    let stats = other.stats().unwrap();
    assert_eq!(stats.get("corpus_users").and_then(Json::as_usize), Some(split.auxiliary.n_users));
    assert_eq!(stats.get("attacks").and_then(Json::as_usize), Some(1));
    assert_eq!(
        stats.get("attacked_users").and_then(Json::as_usize),
        Some(split.anonymized.n_users)
    );
    assert_eq!(stats.get("mapped_users").and_then(Json::as_usize), Some(mapped));
    assert_eq!(stats.get("errors").and_then(Json::as_usize), Some(2));
    assert!(stats.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);

    // Daemon-side counters agree with the wire view.
    let daemon_stats = daemon.stats();
    assert_eq!(daemon_stats.attacks, 1);
    assert_eq!(daemon_stats.errors, 2);

    other.shutdown().unwrap();
    daemon.join();
}

#[test]
fn concurrent_ingests_from_two_connections_both_land() {
    // Two clients stream disjoint cohorts at the same time. The daemon's
    // copy-on-write updates must serialize — if both built on the same
    // base corpus, one swap would silently discard the other's chunk.
    let daemon = Daemon::bind("127.0.0.1:0", default_config()).unwrap();
    let addr = daemon.addr();
    let chunk_a = Forum::generate(&ForumConfig::tiny(), 5);
    let chunk_b = Forum::generate(&ForumConfig::tiny(), 6);
    let expected = chunk_a.n_users + chunk_b.n_users;
    let send = |chunk: Forum| {
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).unwrap();
            client.add_auxiliary_users(&chunk).unwrap();
        })
    };
    let (a, b) = (send(chunk_a), send(chunk_b));
    a.join().unwrap();
    b.join().unwrap();
    let mut client = ServiceClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("corpus_users").and_then(Json::as_usize), Some(expected));
    assert_eq!(stats.get("corpus_updates").and_then(Json::as_usize), Some(2));
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
#[should_panic(expected = "not exactly representable")]
fn oversized_wire_seeds_fail_loudly_instead_of_rounding() {
    let options = AttackOptions { seed: Some((1u64 << 53) + 1), ..AttackOptions::default() };
    let _ = options.to_fields();
}

#[test]
fn requests_split_across_slow_tcp_segments_are_not_lost() {
    use std::io::{BufRead, BufReader, Write};
    // Deliver one request a few bytes at a time with pauses longer than
    // the daemon's shutdown-poll interval. The handler must accumulate
    // the partial line across its read timeouts — dropping bytes at a
    // poll tick would leave the client waiting forever (regression test:
    // the original BufReader::read_line loop did exactly that under
    // load).
    let daemon = Daemon::bind("127.0.0.1:0", default_config()).unwrap();
    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..2 {
        for part in b"{\"cmd\":\"stats\"}\n".chunks(4) {
            stream.write_all(part).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response = Json::parse(line.trim()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert!(response.get("uptime_seconds").is_some());
    }
    stream.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    daemon.join();
}

#[test]
fn shutdown_stops_the_daemon_promptly() {
    let daemon = Daemon::bind("127.0.0.1:0", default_config()).unwrap();
    let addr = daemon.addr();
    let mut client = ServiceClient::connect(addr).unwrap();
    assert!(!daemon.is_shutting_down());
    client.shutdown().unwrap();
    daemon.join();
    // New connections are refused (or accepted-then-dropped) once down;
    // either way no request can succeed.
    if let Ok(mut late) = ServiceClient::connect(addr) {
        assert!(late.stats().is_err());
    }
}

#[test]
fn stats_wire_schema_is_field_for_field_identical_to_the_mutex_era() {
    // The registry-backed `stats` implementation must be indistinguishable
    // on the wire from the retired `Mutex<DaemonStats>` one: same fields,
    // same order, same numeric values for a known workload (one attack,
    // two error responses — the workload of `stats_count_served_work_and
    // _errors`).
    let split = tiny_split();
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind_with_corpus("127.0.0.1:0", config, Some(corpus)).unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    let reply = client.attack(&split.anonymized, &AttackOptions::default()).unwrap();
    let mapped = reply.mapping.iter().filter(|m| m.is_some()).count();
    let _ = client.request(&Json::parse(r#"{"cmd":"no_such_cmd"}"#).unwrap());
    let _ = client.request(&Json::parse(r#"{"nope": 1}"#).unwrap());

    let stats = client.stats().unwrap();
    let Json::Obj(pairs) = &stats else { panic!("stats response must be an object") };
    let fields: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        fields,
        [
            "ok",
            "corpus_users",
            "corpus_posts",
            "requests",
            "errors",
            "attacks",
            "attacked_users",
            "mapped_users",
            "corpus_updates",
            "rejected_connections",
            "dropped_connections",
            "uptime_seconds",
        ],
        "stats wire schema drifted from the pre-registry implementation"
    );
    assert_eq!(stats.get("corpus_users").and_then(Json::as_usize), Some(split.auxiliary.n_users));
    // attack + 2 failed requests served so far; the in-flight `stats`
    // request is not yet counted (it is counted after its response is
    // written, exactly like the mutex-era daemon).
    assert_eq!(stats.get("requests").and_then(Json::as_usize), Some(3));
    assert_eq!(stats.get("errors").and_then(Json::as_usize), Some(2));
    assert_eq!(stats.get("attacks").and_then(Json::as_usize), Some(1));
    assert_eq!(
        stats.get("attacked_users").and_then(Json::as_usize),
        Some(split.anonymized.n_users)
    );
    assert_eq!(stats.get("mapped_users").and_then(Json::as_usize), Some(mapped));
    assert_eq!(stats.get("corpus_updates").and_then(Json::as_usize), Some(0));
    assert_eq!(stats.get("rejected_connections").and_then(Json::as_usize), Some(0));
    assert_eq!(stats.get("dropped_connections").and_then(Json::as_usize), Some(0));
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn metrics_round_trip_contains_every_registered_daemon_metric() {
    use de_health::service::daemon::{COMMANDS, ENCODINGS, ERROR_KINDS};
    let split = tiny_split();
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind_with_corpus("127.0.0.1:0", config, Some(corpus)).unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    client.attack(&split.anonymized, &AttackOptions::default()).unwrap();

    // Round trip: daemon response → emit → parse through `service::json`.
    let response = client.metrics().unwrap();
    let reparsed = Json::parse(&response.emit()).unwrap();
    let metrics = reparsed.get("metrics").and_then(Json::as_array).expect("metrics array");

    let label_of = |m: &Json, key: &str| -> Option<String> {
        m.get("labels")?.get(key).and_then(Json::as_str).map(str::to_string)
    };
    let has = |name: &str, label: Option<(&str, &str)>| {
        metrics.iter().any(|m| {
            m.get("name").and_then(Json::as_str) == Some(name)
                && label.is_none_or(|(k, v)| label_of(m, k).as_deref() == Some(v))
        })
    };

    for name in [
        "daemon_requests_total",
        "daemon_errors_total",
        "daemon_attacks_total",
        "daemon_attacked_users_total",
        "daemon_mapped_users_total",
        "daemon_corpus_updates_total",
        "daemon_rejected_connections_total",
        "daemon_dropped_connections_total",
        "daemon_connections_live",
        "daemon_parse_seconds",
        "daemon_queue_seconds",
        "daemon_engine_seconds",
        "daemon_emit_seconds",
        "corpus_users",
        "corpus_posts",
        "corpus_generation",
        "corpus_resident_arena_bytes",
        "corpus_borrowed_arena_bytes",
    ] {
        assert!(has(name, None), "metric {name} missing from the wire registry dump");
    }
    for cmd in COMMANDS {
        assert!(has("daemon_command_requests_total", Some(("cmd", cmd))), "{cmd}");
        assert!(has("daemon_command_seconds", Some(("cmd", cmd))), "{cmd}");
    }
    for kind in ERROR_KINDS {
        assert!(has("daemon_error_kind_total", Some(("kind", kind))), "{kind}");
    }
    for encoding in ENCODINGS {
        assert!(has("daemon_encoding_requests_total", Some(("encoding", encoding))), "{encoding}");
    }

    // The attack left observable traces: a live request counter, one
    // latency sample in the attack histogram, and engine stage timings
    // recorded through `EngineReport::record_into`.
    let value_of = |name: &str, label: Option<(&str, &str)>| -> Option<f64> {
        metrics
            .iter()
            .find(|m| {
                m.get("name").and_then(Json::as_str) == Some(name)
                    && label.is_none_or(|(k, v)| label_of(m, k).as_deref() == Some(v))
            })
            .and_then(|m| m.get("value").and_then(Json::as_f64))
    };
    assert!(value_of("daemon_requests_total", None).unwrap() >= 1.0);
    assert!(value_of("daemon_command_requests_total", Some(("cmd", "attack"))).unwrap() >= 1.0);
    let attack_hist = metrics
        .iter()
        .find(|m| {
            m.get("name").and_then(Json::as_str) == Some("daemon_command_seconds")
                && label_of(m, "cmd").as_deref() == Some("attack")
        })
        .expect("attack latency histogram");
    assert_eq!(attack_hist.get("count").and_then(Json::as_usize), Some(1));
    assert!(attack_hist.get("p50").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(has("engine_stage_seconds", Some(("stage", "topk"))));

    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn coalesced_concurrent_attacks_are_bit_identical_to_serial_and_unbatched() {
    // The batching acceptance oracle: four clients fire mixed attack
    // requests (different top_k / seed / n_landmarks overrides) into one
    // coalescing window. The daemon merges them into a single fused
    // engine pass — and every demuxed reply must be bit-identical to
    // (a) the serial `DeHealth::run` oracle for that request's config
    // and (b) the unbatched daemon path (`batch_window = 0`), at 1, 2
    // and 8 engine threads.
    let split = tiny_split();
    let variants: Vec<(AttackOptions, AttackConfig)> = vec![
        (AttackOptions::default(), attack_cfg()),
        (
            AttackOptions { top_k: Some(3), seed: Some(1234), ..AttackOptions::default() },
            AttackConfig { top_k: 3, seed: 1234, ..attack_cfg() },
        ),
        (
            AttackOptions { n_landmarks: Some(6), ..AttackOptions::default() },
            AttackConfig { n_landmarks: 6, ..attack_cfg() },
        ),
        (
            AttackOptions { top_k: Some(7), ..AttackOptions::default() },
            AttackConfig { top_k: 7, ..attack_cfg() },
        ),
    ];
    let references: Vec<_> = variants
        .iter()
        .map(|(_, cfg)| DeHealth::new(cfg.clone()).run(&split.auxiliary, &split.anonymized))
        .collect();

    // Unbatched control: window zero forces the classic solo
    // `run_prepared` path for every request.
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let unbatched_limits = DaemonLimits { batch_window: Duration::ZERO, ..DaemonLimits::default() };
    let daemon =
        Daemon::bind_with("127.0.0.1:0", config.clone(), Some(corpus.clone()), unbatched_limits)
            .unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    for ((options, _), reference) in variants.iter().zip(&references) {
        let reply = client.attack(&split.anonymized, options).unwrap();
        assert_eq!(reply.mapping, reference.mapping, "unbatched mapping diverged");
        assert_eq!(reply.candidates, reference.candidates, "unbatched candidates diverged");
    }
    client.shutdown().unwrap();
    daemon.join();

    for threads in [1usize, 2, 8] {
        // Wide window so all four concurrent requests coalesce.
        let limits =
            DaemonLimits { batch_window: Duration::from_millis(250), ..DaemonLimits::default() };
        let daemon =
            Daemon::bind_with("127.0.0.1:0", config.clone(), Some(corpus.clone()), limits).unwrap();
        let addr = daemon.addr();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(variants.len()));
        let handles: Vec<_> = variants
            .iter()
            .map(|(options, _)| {
                let anonymized = split.anonymized.clone();
                let options = AttackOptions { threads: Some(threads), ..*options };
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = ServiceClient::connect(addr).unwrap();
                    barrier.wait();
                    client.attack(&anonymized, &options).unwrap()
                })
            })
            .collect();
        let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ((reply, reference), (options, _)) in replies.iter().zip(&references).zip(&variants) {
            assert_eq!(
                reply.mapping, reference.mapping,
                "batched mapping diverged from DeHealth::run at {threads} threads ({options:?})"
            );
            assert_eq!(
                reply.candidates, reference.candidates,
                "batched candidates diverged at {threads} threads ({options:?})"
            );
        }
        // Coalescing actually happened: fewer flushed batches than
        // attacks (four barrier-synchronized requests against one
        // 250ms window cannot all ride alone).
        let batch_sizes = daemon.registry().histogram("daemon_batch_size").snapshot();
        let batches: u64 = batch_sizes.counts.iter().sum();
        assert!(
            (1..4).contains(&batches),
            "expected 4 concurrent attacks to coalesce into 1–3 batches, got {batches}"
        );

        let mut closer = ServiceClient::connect(addr).unwrap();
        closer.shutdown().unwrap();
        daemon.join();
    }
}

#[test]
fn corpus_swap_mid_window_closes_the_group_and_both_sides_stay_exact() {
    // Attacks capture the corpus Arc when they come off the wire and
    // batches group by that Arc: a swap landing mid-window must route
    // pre-swap requests against the old corpus and post-swap requests
    // against the new one — each side bit-identical to its own serial
    // oracle.
    let split = tiny_split();
    let chunk = Forum::generate(&ForumConfig::tiny(), 77);
    let mut merged_posts: Vec<Post> = split.auxiliary.posts.clone();
    for p in &chunk.posts {
        merged_posts.push(Post {
            author: p.author + split.auxiliary.n_users,
            thread: p.thread + split.auxiliary.n_threads,
            text: p.text.clone(),
        });
    }
    let merged = Forum::from_posts(
        split.auxiliary.n_users + chunk.n_users,
        split.auxiliary.n_threads + chunk.n_threads,
        merged_posts,
    );
    let reference_old = DeHealth::new(attack_cfg()).run(&split.auxiliary, &split.anonymized);
    let reference_new = DeHealth::new(attack_cfg()).run(&merged, &split.anonymized);

    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let limits =
        DaemonLimits { batch_window: Duration::from_millis(400), ..DaemonLimits::default() };
    let daemon = Daemon::bind_with("127.0.0.1:0", config, Some(corpus), limits).unwrap();
    let addr = daemon.addr();

    let fire_pair = |expected_mapping: Vec<Option<usize>>| {
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let anonymized = split.anonymized.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = ServiceClient::connect(addr).unwrap();
                    barrier.wait();
                    client.attack(&anonymized, &AttackOptions::default()).unwrap()
                })
            })
            .collect();
        for h in handles {
            let reply = h.join().unwrap();
            assert_eq!(reply.mapping, expected_mapping);
        }
    };

    // Two attacks against the pre-swap corpus coalesce into one group…
    fire_pair(reference_old.mapping.clone());
    // …the ingest swaps the corpus Arc…
    let mut updater = ServiceClient::connect(addr).unwrap();
    updater.add_auxiliary_users(&chunk).unwrap();
    // …and two post-swap attacks open a fresh group against the new Arc.
    fire_pair(reference_new.mapping.clone());

    // Grouping by Arc identity kept the two sides in separate batches.
    let batch_sizes = daemon.registry().histogram("daemon_batch_size").snapshot();
    let batches: u64 = batch_sizes.counts.iter().sum();
    assert!(
        (2..=4).contains(&batches),
        "expected the swap to close the old group (2–4 batches for 4 attacks), got {batches}"
    );

    updater.shutdown().unwrap();
    daemon.join();
}

#[test]
fn attack_parity_holds_while_the_registry_is_scraped() {
    // Telemetry must be purely observational: interleaving `metrics`
    // scrapes (wire JSON and Prometheus text) with attacks cannot perturb
    // the attack results.
    let split = tiny_split();
    let reference = DeHealth::new(attack_cfg()).run(&split.auxiliary, &split.anonymized);
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind_with_corpus("127.0.0.1:0", config, Some(corpus)).unwrap();
    let registry = daemon.registry();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    for _ in 0..2 {
        let reply = client.attack(&split.anonymized, &AttackOptions::default()).unwrap();
        assert_eq!(reply.mapping, reference.mapping);
        assert_eq!(reply.candidates, reference.candidates);
        client.metrics().unwrap();
        assert!(registry.prometheus_text().contains("# TYPE daemon_command_seconds histogram"));
    }
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn binary_attack_frames_are_bit_identical_to_json_and_the_serial_oracle() {
    // The encoding-parity oracle for the tentpole: the same daemon serves
    // one legacy newline-JSON client and one binary-frame client, and
    // every (threads × options) cell of the attack matrix must come back
    // bit-identical across encodings AND to the serial `DeHealth::run`
    // reference. Replies are always JSON, so the emitted mapping and
    // candidate arrays can be compared as strings, byte for byte.
    use de_health::service::WireEncoding;
    let split = tiny_split();
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind_with_corpus("127.0.0.1:0", config, Some(corpus)).unwrap();

    let mut json_client = ServiceClient::connect(daemon.addr()).unwrap();
    let mut bin_client = ServiceClient::connect(daemon.addr()).unwrap();
    bin_client.set_encoding(WireEncoding::Binary);
    assert_eq!(bin_client.encoding(), WireEncoding::Binary);

    let variants: Vec<(AttackOptions, AttackConfig)> = vec![
        (AttackOptions::default(), attack_cfg()),
        (AttackOptions { threads: Some(1), ..AttackOptions::default() }, attack_cfg()),
        (AttackOptions { threads: Some(8), ..AttackOptions::default() }, attack_cfg()),
        (
            AttackOptions { top_k: Some(3), n_landmarks: Some(6), ..AttackOptions::default() },
            AttackConfig { top_k: 3, n_landmarks: 6, ..attack_cfg() },
        ),
        (
            AttackOptions { seed: Some(99), threads: Some(2), ..AttackOptions::default() },
            AttackConfig { seed: 99, ..attack_cfg() },
        ),
    ];
    for (options, serial_cfg) in variants {
        let reference = DeHealth::new(serial_cfg).run(&split.auxiliary, &split.anonymized);
        let from_json = json_client.attack(&split.anonymized, &options).unwrap();
        let from_bin = bin_client.attack(&split.anonymized, &options).unwrap();
        assert_eq!(from_json.mapping, reference.mapping, "JSON vs serial: {options:?}");
        assert_eq!(from_bin.mapping, reference.mapping, "binary vs serial: {options:?}");
        assert_eq!(from_json.candidates, reference.candidates, "JSON vs serial: {options:?}");
        assert_eq!(from_bin.candidates, reference.candidates, "binary vs serial: {options:?}");
        // Bit-identical on the wire: the emitted result sub-objects (the
        // report carries wall-clock timings, so it is excluded).
        for key in ["mapping", "candidates"] {
            let a = from_json.raw.get(key).unwrap().emit();
            let b = from_bin.raw.get(key).unwrap().emit();
            assert_eq!(a, b, "emitted {key} diverged across encodings: {options:?}");
        }
    }

    // Both wire encodings left their mark in the telemetry registry, and
    // the stage timers prove parsing was billed to the workers.
    let registry = daemon.registry();
    assert!(
        registry.counter_with("daemon_encoding_requests_total", &[("encoding", "json")]).get() > 0
    );
    assert!(
        registry.counter_with("daemon_encoding_requests_total", &[("encoding", "binary")]).get()
            > 0
    );
    for stage in ["parse", "queue", "engine", "emit"] {
        let h = registry.histogram(&format!("daemon_{stage}_seconds"));
        assert!(h.count() > 0, "daemon_{stage}_seconds recorded no samples");
    }

    json_client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn binary_incremental_ingest_matches_batch_reference() {
    // `add_auxiliary_users` over binary frames: bootstrap with half the
    // auxiliary cohort, append the rest as raw `encode_forum` payload,
    // and the final attack must match a serial run on the merged forum —
    // the same oracle the JSON ingest test pins.
    use de_health::service::WireEncoding;
    let split = tiny_split();
    let aux = &split.auxiliary;
    let chunk_of = |lo: usize, hi: usize| -> Forum {
        let posts: Vec<Post> = aux
            .posts
            .iter()
            .filter(|p| p.author >= lo && p.author < hi)
            .map(|p| Post { author: p.author - lo, thread: p.thread, text: p.text.clone() })
            .collect();
        Forum::from_posts(hi - lo, aux.n_threads, posts)
    };
    let mid = aux.n_users / 2;
    let chunks = [chunk_of(0, mid), chunk_of(mid, aux.n_users)];
    // The daemon offsets an appended chunk's user AND thread ids by the
    // prior totals — mirror that to build the serial reference.
    let mut merged_posts = Vec::new();
    let (mut user_off, mut thread_off) = (0usize, 0usize);
    for chunk in &chunks {
        for p in &chunk.posts {
            merged_posts.push(Post {
                author: p.author + user_off,
                thread: p.thread + thread_off,
                text: p.text.clone(),
            });
        }
        user_off += chunk.n_users;
        thread_off += chunk.n_threads;
    }
    let merged = Forum::from_posts(user_off, thread_off, merged_posts);
    let reference = DeHealth::new(attack_cfg()).run(&merged, &split.anonymized);

    let bootstrap = PreparedCorpus::build(chunks[0].clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let daemon = Daemon::bind_with_corpus("127.0.0.1:0", config, Some(bootstrap)).unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    client.set_encoding(WireEncoding::Binary);
    let added = client.add_auxiliary_users(&chunks[1]).unwrap();
    assert_eq!(added.get("users").and_then(Json::as_usize), Some(aux.n_users));

    let reply = client.attack(&split.anonymized, &AttackOptions::default()).unwrap();
    assert_eq!(reply.mapping, reference.mapping);
    assert_eq!(reply.candidates, reference.candidates);
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn oversize_frame_header_is_rejected_before_any_payload_is_buffered() {
    // A frame header declaring a 2 GiB payload must be answered with the
    // typed oversize error straight from the 8-byte header — the daemon
    // never waits for (or buffers) a single payload byte.
    use de_health::service::frame::{FrameTag, FRAME_MAGIC};
    use std::io::{BufRead, BufReader, Write};
    let limits = DaemonLimits { max_request_bytes: 512, ..DaemonLimits::default() };
    let daemon = Daemon::bind_with("127.0.0.1:0", default_config(), None, limits).unwrap();
    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let mut header = Vec::from(FRAME_MAGIC);
    header.push(FrameTag::Attack.to_byte());
    header.push(0);
    header.extend_from_slice(&(2u32 * 1024 * 1024 * 1024).to_le_bytes());
    stream.write_all(&header).unwrap();
    stream.flush().unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    let error = response.get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("exceeding the 512 byte limit"), "unexpected error: {error}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection must be closed");
    assert_eq!(daemon.stats().dropped_connections, 1);

    // A fresh, well-behaved connection is still served.
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    assert!(client.stats().is_ok());
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn malformed_frames_get_typed_errors_and_closed_connections_never_hangs() {
    // Every way a frame can be malformed ends the same way: one typed
    // `"ok":false` line, a counted error kind, and a closed connection —
    // never a hang, never a panic.
    use de_health::service::frame::{encode_add_users_frame, FRAME_HEADER_BYTES};
    use std::io::{BufRead, BufReader, Write};
    let chunk = Forum::generate(&ForumConfig::tiny(), 5);
    let good = encode_add_users_frame(&chunk);

    // (bytes to send, expected error substring)
    let mut cases: Vec<(Vec<u8>, &str)> = Vec::new();
    // Wrong second magic byte: 0xDE selects binary framing, then garbage.
    cases.push((vec![0xDE, 0x00, 1, 0, 0, 0, 0, 0], "bad frame magic"));
    // Unknown command tag.
    cases.push((vec![0xDE, 0x48, 99, 0, 0, 0, 0, 0], "unknown frame command tag"));
    // Nonzero reserved byte.
    cases.push((vec![0xDE, 0x48, 1, 7, 0, 0, 0, 0], "nonzero reserved frame byte"));
    // Valid frame with one payload byte flipped: checksum mismatch.
    let mut flipped = good.clone();
    flipped[FRAME_HEADER_BYTES + 3] ^= 0xFF;
    cases.push((flipped, "checksum mismatch"));
    // A JSON line injected inside the frame's declared extent is consumed
    // as payload bytes and fails the checksum — it is never parsed as a
    // command.
    let mut injected = good.clone();
    let json_line = b"{\"cmd\":\"shutdown\"}\n";
    injected[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + json_line.len()].copy_from_slice(json_line);
    cases.push((injected, "checksum mismatch"));

    let n_cases = cases.len();
    let daemon = Daemon::bind("127.0.0.1:0", default_config()).unwrap();
    for (bytes, expect) in cases {
        let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(&bytes).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response = Json::parse(line.trim()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false), "{expect}");
        let error = response.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains(expect), "expected {expect:?} in {error:?}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "{expect}: must close");
    }
    assert_eq!(daemon.stats().dropped_connections, n_cases as u64);

    // The daemon shrugged it all off and still serves.
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    assert!(client.stats().is_ok());
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn truncated_frame_header_stall_hits_the_read_deadline() {
    // A client that sends half a frame header and stalls is a half-open
    // connection like any other: the read deadline kills it with the
    // typed error even though no newline ever arrived.
    use std::io::{BufRead, BufReader, Write};
    let limits =
        DaemonLimits { read_deadline: Duration::from_millis(150), ..DaemonLimits::default() };
    let daemon = Daemon::bind_with("127.0.0.1:0", default_config(), None, limits).unwrap();
    let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(&[0xDE, 0x48, 1]).unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert!(response.get("error").and_then(Json::as_str).unwrap().contains("read deadline"));
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection must be closed");
    assert_eq!(daemon.stats().dropped_connections, 1);
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn mixed_encoding_attacks_coalesce_into_one_batch_and_stay_exact() {
    // Encoding is a wire concern only: a binary-frame attack and a JSON
    // attack landing inside the same coalescing window must fuse into one
    // batched engine pass and still come back bit-identical to the serial
    // reference.
    use de_health::service::WireEncoding;
    let split = tiny_split();
    let reference = DeHealth::new(attack_cfg()).run(&split.auxiliary, &split.anonymized);
    let corpus = PreparedCorpus::build(split.auxiliary.clone(), attack_cfg().classifier);
    let config = EngineConfig { attack: attack_cfg(), ..default_config() };
    let limits =
        DaemonLimits { batch_window: Duration::from_millis(400), ..DaemonLimits::default() };
    let daemon = Daemon::bind_with("127.0.0.1:0", config, Some(corpus), limits).unwrap();
    let addr = daemon.addr();

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let handles: Vec<_> = [WireEncoding::Json, WireEncoding::Binary]
        .into_iter()
        .map(|encoding| {
            let anonymized = split.anonymized.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).unwrap();
                client.set_encoding(encoding);
                barrier.wait();
                client.attack(&anonymized, &AttackOptions::default()).unwrap()
            })
        })
        .collect();
    for h in handles {
        let reply = h.join().unwrap();
        assert_eq!(reply.mapping, reference.mapping);
        assert_eq!(reply.candidates, reference.candidates);
    }

    let batch_sizes = daemon.registry().histogram("daemon_batch_size").snapshot();
    let batches: u64 = batch_sizes.counts.iter().sum();
    assert!(
        (1..=2).contains(&batches),
        "2 mixed-encoding attacks should land in at most 2 batches, got {batches}"
    );
    assert!(daemon.registry().histogram("daemon_parse_seconds").count() >= 2);

    let mut client = ServiceClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    daemon.join();
}
