//! Snapshot persistence: round-trip bit-parity against a freshly built
//! corpus, v1 ↔ v2 ↔ v3 compatibility (v3 = v2 plus an optional
//! quantized-arena section), zero-copy (mmap) vs owned load
//! parity, and robustness of the decoder against malformed files —
//! truncation, bad magic, wrong version, corrupted payloads, bad
//! padding, misaligned arenas, and a v1 file fed to the v2 fast path
//! must all surface as typed [`SnapshotError`]s, never panics or
//! unaligned casts.

use de_health::core::index::AttributeIndex;
use de_health::core::refined::{ClassifierKind, RefinedContext};
use de_health::corpus::snapshot::{
    ParseOptions, SnapshotError, SnapshotReader, ALIGN, MAGIC, V1, V2, V3, VERSION,
};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig};
use de_health::mapped::ByteSource;
use de_health::service::{LoadMode, PreparedCorpus};

fn built_corpus(classifier: ClassifierKind) -> PreparedCorpus {
    let forum = Forum::generate(&ForumConfig::tiny(), 42);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
    PreparedCorpus::build(split.auxiliary, classifier)
}

#[test]
fn roundtrip_is_bit_identical_to_fresh_build() {
    for classifier in [ClassifierKind::default(), ClassifierKind::Centroid] {
        let fresh = built_corpus(classifier);
        let bytes = fresh.to_snapshot_bytes();
        let loaded = PreparedCorpus::from_snapshot_bytes(&bytes).unwrap();

        // The loaded corpus re-serializes to the identical byte stream:
        // forum, per-post features, attribute index and refined context
        // all round-trip bit for bit (floats are stored as raw IEEE-754
        // bits).
        assert_eq!(loaded.to_snapshot_bytes(), bytes, "{classifier:?}");

        // And the derived state matches the freshly built corpus
        // structurally.
        assert_eq!(loaded.n_users(), fresh.n_users());
        assert_eq!(loaded.n_posts(), fresh.n_posts());
        assert_eq!(loaded.index().n_postings(), fresh.index().n_postings());
        assert_eq!(loaded.context().is_sparse(), fresh.context().is_sparse());
        assert_eq!(loaded.uda().present_users(), fresh.uda().present_users());
    }
}

#[test]
fn file_roundtrip_via_save_and_load() {
    let fresh = built_corpus(ClassifierKind::default());
    let path = std::env::temp_dir().join("dehealth-snapshot-roundtrip-test.snap");
    fresh.save(&path).unwrap();
    let (loaded, seconds) = PreparedCorpus::load_timed(&path).unwrap();
    assert!(seconds >= 0.0);
    assert_eq!(loaded.to_snapshot_bytes(), fresh.to_snapshot_bytes());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_files_return_typed_errors_at_every_length() {
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    // Every proper prefix must fail with a *typed* error — mostly
    // Truncated, with ChecksumMismatch for prefixes that cut inside a
    // trailing checksum's section, and never a panic. Sampling every
    // offset would be slow; probe a spread plus all boundaries.
    let probes: Vec<usize> =
        (0..bytes.len()).step_by(97).chain([0, 1, 7, 8, 15, 16, 27, bytes.len() - 1]).collect();
    for n in probes {
        match PreparedCorpus::from_snapshot_bytes(&bytes[..n]) {
            Err(
                SnapshotError::Truncated { .. }
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::MissingSection(_)
                | SnapshotError::BadMagic,
            ) => {}
            other => panic!("prefix of {n} bytes: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    bytes[..MAGIC.len()].copy_from_slice(b"NOTSNAP!");
    assert!(matches!(PreparedCorpus::from_snapshot_bytes(&bytes), Err(SnapshotError::BadMagic)));
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    let future = VERSION + 41;
    bytes[8..10].copy_from_slice(&future.to_le_bytes());
    assert!(matches!(
        PreparedCorpus::from_snapshot_bytes(&bytes),
        Err(SnapshotError::UnsupportedVersion(v)) if v == future
    ));
}

#[test]
fn corrupted_payload_fails_its_checksum() {
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    // Flip one byte at a spread of payload offsets; every corruption must
    // surface as a checksum mismatch (the header itself is covered by the
    // magic/version/truncation tests above).
    for at in (20..bytes.len()).step_by((bytes.len() / 23).max(1)) {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x5a;
        match PreparedCorpus::from_snapshot_bytes(&corrupted) {
            Err(
                SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Truncated { .. }
                | SnapshotError::Malformed { .. }
                | SnapshotError::MissingSection(_),
            ) => {}
            Ok(_) => panic!("corruption at byte {at} went undetected"),
            other => panic!("corruption at byte {at}: unexpected {other:?}"),
        }
    }
}

#[test]
fn io_errors_are_propagated() {
    let missing = std::env::temp_dir().join("dehealth-no-such-snapshot.snap");
    assert!(matches!(PreparedCorpus::load(&missing), Err(SnapshotError::Io(_))));
    assert!(matches!(
        PreparedCorpus::load_with(&missing, LoadMode::Mapped),
        Err(SnapshotError::Io(_))
    ));
}

#[test]
fn current_snapshots_are_v2_with_aligned_sections() {
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), V2);
    assert_eq!(VERSION, V2);
    // The in-header alignment guarantee.
    assert_eq!(u16::from_le_bytes([bytes[10], bytes[11]]) as usize, ALIGN);
    let reader = SnapshotReader::parse(&bytes).unwrap();
    assert_eq!(reader.version(), V2);
}

#[test]
fn v1_files_still_load_bit_exact_via_the_copying_path() {
    for classifier in [ClassifierKind::default(), ClassifierKind::Centroid] {
        let fresh = built_corpus(classifier);
        let v1 = fresh.to_snapshot_bytes_v1();
        assert_eq!(u16::from_le_bytes([v1[8], v1[9]]), V1);
        // Borrowed-bytes decode (version-dispatched inside).
        let loaded = PreparedCorpus::from_snapshot_bytes(&v1).unwrap();
        assert!(!loaded.is_mapped());
        assert_eq!(loaded.to_snapshot_bytes_v1(), v1, "{classifier:?}");
        assert_eq!(loaded.to_snapshot_bytes(), fresh.to_snapshot_bytes(), "{classifier:?}");
        // A v1 file handed to the *mapped* load mode falls back to the
        // copying path gracefully — still correct, just not borrowed.
        let path = std::env::temp_dir().join("dehealth-snapshot-v1-compat-test.snap");
        std::fs::write(&path, &v1).unwrap();
        let loaded = PreparedCorpus::load_with(&path, LoadMode::Mapped).unwrap();
        assert!(!loaded.is_mapped());
        assert_eq!(loaded.to_snapshot_bytes(), fresh.to_snapshot_bytes());
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn v1_payloads_fed_to_the_v2_fast_path_yield_typed_errors() {
    // The strict v2 decoders must reject a v1-schema payload with a
    // typed error, never a panic or a misinterpretation.
    let corpus = built_corpus(ClassifierKind::default());
    let v1 = corpus.to_snapshot_bytes_v1();
    let reader = SnapshotReader::parse(&v1).unwrap();
    assert_eq!(reader.version(), V1);
    let mut s = reader.section(de_health::service::corpus::SECTION_INDEX).unwrap();
    match AttributeIndex::decode_v2(&mut s, None) {
        Err(
            SnapshotError::Malformed { .. }
            | SnapshotError::Truncated { .. }
            | SnapshotError::Misaligned { .. },
        ) => {}
        other => panic!("v1 index payload through the v2 decoder: {other:?}"),
    }
    let mut s = reader.section(de_health::service::corpus::SECTION_CONTEXT).unwrap();
    match RefinedContext::decode_v2(&mut s, None) {
        Err(
            SnapshotError::Malformed { .. }
            | SnapshotError::Truncated { .. }
            | SnapshotError::Misaligned { .. },
        ) => {}
        other => panic!("v1 context payload through the v2 decoder: {other:?}"),
    }
}

#[test]
fn mapped_and_owned_loads_restore_identical_corpora() {
    for classifier in [ClassifierKind::default(), ClassifierKind::Centroid] {
        let fresh = built_corpus(classifier);
        let path = std::env::temp_dir().join(format!(
            "dehealth-snapshot-mapped-parity-{}.snap",
            if fresh.context().is_sparse() { "sparse" } else { "dense" }
        ));
        fresh.save(&path).unwrap();
        let owned = PreparedCorpus::load_with(&path, LoadMode::Owned).unwrap();
        let mapped = PreparedCorpus::load_with(&path, LoadMode::Mapped).unwrap();
        assert!(mapped.is_mapped() && !owned.is_mapped(), "{classifier:?}");
        assert_eq!(mapped.to_snapshot_bytes(), owned.to_snapshot_bytes(), "{classifier:?}");
        assert_eq!(mapped.to_snapshot_bytes(), fresh.to_snapshot_bytes(), "{classifier:?}");
        // The whole index/context footprint stays in the file mapping.
        let stats = mapped.memory_stats();
        assert_eq!(stats.resident_arena_bytes, 0, "{classifier:?}");
        assert!(stats.borrowed_arena_bytes > 0, "{classifier:?}");
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn v3_quantized_snapshots_roundtrip_owned_and_mapped() {
    let mut fresh = built_corpus(ClassifierKind::default());
    assert!(fresh.quantized().is_none());
    assert!(fresh.ensure_quantized());
    let bytes = fresh.to_snapshot_bytes();
    // A corpus carrying quantized arenas serializes as v3 with the QCTX
    // section appended after the v2 layout.
    assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), V3);
    assert_eq!(SnapshotReader::parse(&bytes).unwrap().version(), V3);

    // Owned load restores the quantized mirror and re-serializes to the
    // identical v3 byte stream.
    let loaded = PreparedCorpus::from_snapshot_bytes(&bytes).unwrap();
    let q = loaded.quantized().expect("v3 QCTX section restores the quantized mirror");
    assert!(q.matches_context(loaded.context()));
    assert_eq!(loaded.to_snapshot_bytes(), bytes);

    // Mapped load keeps the quantized arenas borrowed from the mapping.
    let path = std::env::temp_dir().join("dehealth-snapshot-v3-roundtrip-test.snap");
    std::fs::write(&path, &bytes).unwrap();
    let mapped = PreparedCorpus::load_with(&path, LoadMode::Mapped).unwrap();
    assert!(mapped.is_mapped());
    let q = mapped.quantized().expect("mapped v3 load restores the quantized mirror");
    assert!(q.is_borrowed(), "mapped load must not copy the quantized arenas");
    assert!(q.matches_context(mapped.context()));
    assert_eq!(mapped.to_snapshot_bytes(), bytes);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn v2_and_sectionless_v3_files_load_without_a_quantized_mirror() {
    // A plain v2 file (today's default for unquantized corpora) loads
    // everywhere with `quantized() == None`.
    let fresh = built_corpus(ClassifierKind::default());
    let v2 = fresh.to_snapshot_bytes();
    assert_eq!(u16::from_le_bytes([v2[8], v2[9]]), V2);
    assert!(PreparedCorpus::from_snapshot_bytes(&v2).unwrap().quantized().is_none());

    // A v3 file *without* the optional QCTX section is layout-identical
    // to v2 (the 16-byte header carries the version but is not covered
    // by a section checksum), and degrades gracefully: it loads with no
    // quantized mirror and re-serializes as v2.
    let mut v3 = v2.clone();
    v3[8..10].copy_from_slice(&V3.to_le_bytes());
    let loaded = PreparedCorpus::from_snapshot_bytes(&v3).unwrap();
    assert!(loaded.quantized().is_none());
    assert_eq!(loaded.to_snapshot_bytes(), v2, "no mirror, so it re-serializes as v2");

    // Versions beyond v3 stay typed errors.
    let mut v4 = v2.clone();
    v4[8..10].copy_from_slice(&4u16.to_le_bytes());
    assert!(matches!(
        PreparedCorpus::from_snapshot_bytes(&v4),
        Err(SnapshotError::UnsupportedVersion(4))
    ));
}

#[test]
fn v3_quantized_section_must_match_its_context() {
    // Corrupting the QCTX payload either trips its checksum or — when the
    // bytes still parse — fails the quantized/context cross-check with a
    // typed Malformed error. Never an inconsistent corpus.
    let mut fresh = built_corpus(ClassifierKind::default());
    assert!(fresh.ensure_quantized());
    let bytes = fresh.to_snapshot_bytes();
    let v2_len = {
        let plain = built_corpus(ClassifierKind::default());
        assert!(plain.quantized().is_none());
        plain.to_snapshot_bytes().len()
    };
    assert!(bytes.len() > v2_len, "QCTX section must extend the file");
    for at in (v2_len + 16..bytes.len()).step_by(((bytes.len() - v2_len) / 11).max(1)) {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x5a;
        match PreparedCorpus::from_snapshot_bytes(&corrupted) {
            Err(
                SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Malformed { .. }
                | SnapshotError::Truncated { .. }
                | SnapshotError::Misaligned { .. },
            ) => {}
            Ok(_) => panic!("QCTX corruption at byte {at} went undetected"),
            other => panic!("QCTX corruption at byte {at}: unexpected {other:?}"),
        }
    }
}

#[test]
fn misaligned_backing_yields_a_typed_error_not_an_unaligned_cast() {
    // Shift a valid v2 snapshot by 4 bytes inside an 8-aligned buffer:
    // every u64/f64 arena offset is now misaligned in memory. The strict
    // zero-copy decoders must answer with `SnapshotError::Misaligned`.
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    let mut shifted = vec![0u8; 4];
    shifted.extend_from_slice(&bytes);
    let backing = ByteSource::from_vec(shifted);
    let snapshot = &backing.bytes()[4..];
    let reader = SnapshotReader::parse(snapshot).unwrap();
    let mut s = reader.section(de_health::service::corpus::SECTION_INDEX).unwrap();
    match AttributeIndex::decode_v2(&mut s, Some(&backing)) {
        Err(SnapshotError::Misaligned { .. }) => {}
        other => panic!("misaligned index arena must be refused, got {other:?}"),
    }
    let mut s = reader.section(de_health::service::corpus::SECTION_CONTEXT).unwrap();
    match RefinedContext::decode_v2(&mut s, Some(&backing)) {
        Err(SnapshotError::Misaligned { .. }) => {}
        other => panic!("misaligned context arena must be refused, got {other:?}"),
    }
}

#[test]
fn nonzero_v2_padding_is_rejected() {
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    // Corrupt the first section header's padding (fixed offset 20..24).
    let mut bad = bytes.clone();
    bad[21] = 0x5a;
    assert!(matches!(
        PreparedCorpus::from_snapshot_bytes(&bad),
        Err(SnapshotError::Malformed { context: "nonzero section header padding" })
    ));
    // Walk the section table to find a section with payload padding and
    // corrupt the first pad byte.
    let mut at = 16usize;
    let mut patched = None;
    while at + 16 <= bytes.len() {
        let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
        let payload_end = at + 16 + len;
        let pad = len.wrapping_neg() % ALIGN;
        if pad > 0 {
            patched = Some(payload_end);
            break;
        }
        at = payload_end + pad + 8;
    }
    let payload_end = patched.expect("at least one section has payload padding");
    let mut bad = bytes.clone();
    bad[payload_end] = 0xff;
    assert!(matches!(
        PreparedCorpus::from_snapshot_bytes(&bad),
        Err(SnapshotError::Malformed { context: "nonzero section padding" })
    ));
}

#[test]
fn truncated_aligned_tails_are_typed_errors() {
    // Cut a v2 file inside the final checksum, inside the final padding,
    // and on the padding boundary — all must be `Truncated`, and the
    // zero-copy (trusting) parse must agree with the verified one.
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    for cut in [bytes.len() - 1, bytes.len() - 7, bytes.len() - 9, bytes.len() - 16] {
        let prefix = &bytes[..cut];
        assert!(matches!(
            PreparedCorpus::from_snapshot_bytes(prefix),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            SnapshotReader::parse_with(prefix, &ParseOptions::trusting()),
            Err(SnapshotError::Truncated { .. })
        ));
    }
}

#[test]
fn error_display_is_informative() {
    let text = format!("{}", SnapshotError::BadMagic);
    assert!(text.contains("magic"));
    let text = format!("{}", SnapshotError::UnsupportedVersion(9));
    assert!(text.contains('9'));
    let text = format!("{}", SnapshotError::Truncated { context: "section payload" });
    assert!(text.contains("section payload"));
}
