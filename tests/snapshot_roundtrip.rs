//! Snapshot persistence: round-trip bit-parity against a freshly built
//! corpus, and robustness of the decoder against malformed files —
//! truncation, bad magic, wrong version, and corrupted payloads must all
//! surface as typed [`SnapshotError`]s, never panics.

use de_health::core::refined::ClassifierKind;
use de_health::corpus::snapshot::{SnapshotError, MAGIC, VERSION};
use de_health::corpus::split::{closed_world_split, SplitConfig};
use de_health::corpus::{Forum, ForumConfig};
use de_health::service::PreparedCorpus;

fn built_corpus(classifier: ClassifierKind) -> PreparedCorpus {
    let forum = Forum::generate(&ForumConfig::tiny(), 42);
    let split = closed_world_split(&forum, &SplitConfig::fraction(0.5), 7);
    PreparedCorpus::build(split.auxiliary, classifier)
}

#[test]
fn roundtrip_is_bit_identical_to_fresh_build() {
    for classifier in [ClassifierKind::default(), ClassifierKind::Centroid] {
        let fresh = built_corpus(classifier);
        let bytes = fresh.to_snapshot_bytes();
        let loaded = PreparedCorpus::from_snapshot_bytes(&bytes).unwrap();

        // The loaded corpus re-serializes to the identical byte stream:
        // forum, per-post features, attribute index and refined context
        // all round-trip bit for bit (floats are stored as raw IEEE-754
        // bits).
        assert_eq!(loaded.to_snapshot_bytes(), bytes, "{classifier:?}");

        // And the derived state matches the freshly built corpus
        // structurally.
        assert_eq!(loaded.n_users(), fresh.n_users());
        assert_eq!(loaded.n_posts(), fresh.n_posts());
        assert_eq!(loaded.index().n_postings(), fresh.index().n_postings());
        assert_eq!(loaded.context().is_sparse(), fresh.context().is_sparse());
        assert_eq!(loaded.uda().present_users(), fresh.uda().present_users());
    }
}

#[test]
fn file_roundtrip_via_save_and_load() {
    let fresh = built_corpus(ClassifierKind::default());
    let path = std::env::temp_dir().join("dehealth-snapshot-roundtrip-test.snap");
    fresh.save(&path).unwrap();
    let (loaded, seconds) = PreparedCorpus::load_timed(&path).unwrap();
    assert!(seconds >= 0.0);
    assert_eq!(loaded.to_snapshot_bytes(), fresh.to_snapshot_bytes());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_files_return_typed_errors_at_every_length() {
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    // Every proper prefix must fail with a *typed* error — mostly
    // Truncated, with ChecksumMismatch for prefixes that cut inside a
    // trailing checksum's section, and never a panic. Sampling every
    // offset would be slow; probe a spread plus all boundaries.
    let probes: Vec<usize> =
        (0..bytes.len()).step_by(97).chain([0, 1, 7, 8, 15, 16, 27, bytes.len() - 1]).collect();
    for n in probes {
        match PreparedCorpus::from_snapshot_bytes(&bytes[..n]) {
            Err(
                SnapshotError::Truncated { .. }
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::MissingSection(_)
                | SnapshotError::BadMagic,
            ) => {}
            other => panic!("prefix of {n} bytes: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    bytes[..MAGIC.len()].copy_from_slice(b"NOTSNAP!");
    assert!(matches!(PreparedCorpus::from_snapshot_bytes(&bytes), Err(SnapshotError::BadMagic)));
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    let future = VERSION + 41;
    bytes[8..10].copy_from_slice(&future.to_le_bytes());
    assert!(matches!(
        PreparedCorpus::from_snapshot_bytes(&bytes),
        Err(SnapshotError::UnsupportedVersion(v)) if v == future
    ));
}

#[test]
fn corrupted_payload_fails_its_checksum() {
    let bytes = built_corpus(ClassifierKind::default()).to_snapshot_bytes();
    // Flip one byte at a spread of payload offsets; every corruption must
    // surface as a checksum mismatch (the header itself is covered by the
    // magic/version/truncation tests above).
    for at in (20..bytes.len()).step_by((bytes.len() / 23).max(1)) {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x5a;
        match PreparedCorpus::from_snapshot_bytes(&corrupted) {
            Err(
                SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Truncated { .. }
                | SnapshotError::Malformed { .. }
                | SnapshotError::MissingSection(_),
            ) => {}
            Ok(_) => panic!("corruption at byte {at} went undetected"),
            other => panic!("corruption at byte {at}: unexpected {other:?}"),
        }
    }
}

#[test]
fn io_errors_are_propagated() {
    let missing = std::env::temp_dir().join("dehealth-no-such-snapshot.snap");
    assert!(matches!(PreparedCorpus::load(&missing), Err(SnapshotError::Io(_))));
}

#[test]
fn error_display_is_informative() {
    let text = format!("{}", SnapshotError::BadMagic);
    assert!(text.contains("magic"));
    let text = format!("{}", SnapshotError::UnsupportedVersion(9));
    assert!(text.contains('9'));
    let text = format!("{}", SnapshotError::Truncated { context: "section payload" });
    assert!(text.contains("section payload"));
}
